#include "serve/engine.h"

#include <chrono>
#include <utility>

#include "core/error.h"

namespace igc::serve {

namespace {

std::function<double()> default_clock() {
  const auto t0 = std::chrono::steady_clock::now();
  return [t0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
}

}  // namespace

std::string EngineHealth::json() const {
  std::string out = "{\"healthy\": ";
  out += healthy() ? "true" : "false";
  out += ", \"serving\": ";
  out += serving ? "true" : "false";
  out += ", \"scheduler_alive\": ";
  out += scheduler_alive ? "true" : "false";
  out += ", \"queue_open\": ";
  out += queue_open ? "true" : "false";
  out += ", \"workers\": " + std::to_string(workers) + "}";
  return out;
}

ServingEngine::ServingEngine(EngineOptions opts) : opts_(std::move(opts)) {
  if (opts_.num_workers < 1) {
    throw Error("ServingEngine: num_workers must be >= 1");
  }
  if (opts_.sim_pacing < 0.0) {
    throw Error("ServingEngine: sim_pacing must be >= 0");
  }
  if (!(opts_.trace.head_sample_rate >= 0.0 &&
        opts_.trace.head_sample_rate <= 1.0)) {
    throw Error("ServingEngine: trace.head_sample_rate must be in [0, 1]");
  }
  if (!opts_.clock_ms) opts_.clock_ms = default_clock();
  if (opts_.trace.enabled) {
    obs::FlightRecorder::Options fopts;
    fopts.num_shards = opts_.num_workers;
    fopts.keep_slowest = opts_.trace.keep_slowest;
    fopts.keep_errors = opts_.trace.keep_errors;
    fopts.keep_head = opts_.trace.keep_head;
    fopts.head_sample_rate = opts_.trace.head_sample_rate;
    flight_ = std::make_unique<obs::FlightRecorder>(fopts);
    exemplars_ = std::make_unique<obs::ExemplarStore>();
  }
  auto& reg = opts_.registry != nullptr ? *opts_.registry
                                        : obs::MetricsRegistry::global();
  m_submitted_ = &reg.counter("serve.submitted");
  m_admitted_ = &reg.counter("serve.admitted");
  m_rejected_ = &reg.counter("serve.rejected");
  m_shed_ = &reg.counter("serve.shed");
  m_completed_ = &reg.counter("serve.completed");
  m_batches_ = &reg.counter("serve.batches");
  m_queue_depth_ = &reg.gauge("serve.queue_depth");
  m_queue_depth_peak_ = &reg.gauge("serve.queue_depth_peak");
  m_batch_size_ = &reg.histogram("serve.batch_size");
  m_queue_wait_ = &reg.histogram("serve.queue_wait_ms");
  m_service_ = &reg.histogram("serve.service_ms");
  m_e2e_ = &reg.histogram("serve.e2e_ms");
}

ServingEngine::~ServingEngine() { stop(); }

int ServingEngine::add_tenant(TenantSpec spec) {
  if (spec.model == nullptr) throw Error("ServingEngine: tenant needs a model");
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_) throw Error("ServingEngine: add_tenant() after start()");
  tenants_.push_back(std::move(spec));
  completed_per_tenant_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  return static_cast<int>(tenants_.size()) - 1;
}

const std::string& ServingEngine::tenant_name(int tenant) const {
  return tenants_.at(static_cast<size_t>(tenant)).name;
}

void ServingEngine::start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_) return;
  if (tenants_.empty()) throw Error("ServingEngine: start() with no tenants");
  if (opts_.page_pool == nullptr) {
    for (const TenantSpec& t : tenants_) {
      if (t.run.use_arena) {
        opts_.page_pool = std::make_shared<PagePool>();
        break;
      }
    }
  }
  RequestQueue::Options qopts = opts_.queue;
  qopts.num_tenants = static_cast<int>(tenants_.size());
  queue_ = std::make_unique<RequestQueue>(qopts);
  // Per-tenant breakouts, resolved now that the tenant set is final. The
  // release store on running_ below publishes them to submitters.
  auto& reg = opts_.registry != nullptr ? *opts_.registry
                                        : obs::MetricsRegistry::global();
  tenant_metrics_.clear();
  tenant_metrics_.reserve(tenants_.size());
  for (const TenantSpec& t : tenants_) {
    const std::string prefix = "serve.tenant." + t.name + ".";
    TenantInstruments ti;
    ti.submitted = &reg.counter(prefix + "submitted");
    ti.completed = &reg.counter(prefix + "completed");
    ti.failed = &reg.counter(prefix + "failed");
    ti.shed = &reg.counter(prefix + "shed");
    ti.rejected = &reg.counter(prefix + "rejected");
    ti.e2e = &reg.histogram(prefix + "e2e_ms");
    tenant_metrics_.push_back(ti);
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  // Liveness flags are raised before the threads spawn (and lowered by the
  // threads themselves on exit), so a health probe racing start() never
  // sees a healthy engine with a "dead" scheduler.
  scheduler_alive_.store(true, std::memory_order_release);
  workers_alive_.store(opts_.num_workers, std::memory_order_release);
  scheduler_ = std::thread([this] { scheduler_main(); });
  workers_.reserve(static_cast<size_t>(opts_.num_workers));
  for (int w = 0; w < opts_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void ServingEngine::record_refusal(Admission a, int tenant) {
  // Per-tenant breakouts exist only once start() published them; the
  // index is guarded because refusals also fire pre-start and for unknown
  // tenant ids.
  TenantInstruments* ti =
      tenant >= 0 && static_cast<size_t>(tenant) < tenant_metrics_.size()
          ? &tenant_metrics_[static_cast<size_t>(tenant)]
          : nullptr;
  switch (a) {
    case Admission::kShedWatermark:
      shed_.fetch_add(1, std::memory_order_relaxed);
      m_shed_->add();
      if (ti != nullptr) ti->shed->add();
      break;
    case Admission::kRejectedQueueFull:
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->add();
      if (ti != nullptr) ti->rejected->add();
      break;
    case Admission::kRejectedShutdown:
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->add();
      if (ti != nullptr) ti->rejected->add();
      break;
    case Admission::kRejectedUnknownTenant:
      rejected_unknown_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->add();
      break;
    case Admission::kAdmitted:
      break;
  }
}

SubmitResult ServingEngine::submit(int tenant, uint64_t input_seed) {
  SubmitResult out;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  m_submitted_->add();
  if (!running_.load(std::memory_order_acquire)) {
    // Pre-start / post-stop: tenant_metrics_ may not be published yet, so
    // shutdown refusals carry no per-tenant attribution (tenant = -1). They
    // are likewise not traced — there is no serving pipeline to follow.
    out.admission = Admission::kRejectedShutdown;
    record_refusal(out.admission, /*tenant=*/-1);
    return out;
  }
  const bool known_tenant =
      tenant >= 0 && static_cast<size_t>(tenant) < tenants_.size();
  if (known_tenant) tenant_metrics_[static_cast<size_t>(tenant)].submitted->add();
  auto req = std::make_unique<Request>();
  req->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req->tenant = tenant;
  req->input_seed = input_seed;
  if (flight_ != nullptr) {
    auto tl = std::make_unique<obs::RequestTimeline>();
    tl->trace_id = req->id;
    tl->tenant = tenant;
    if (known_tenant) {
      tl->tenant_name = tenants_[static_cast<size_t>(tenant)].name;
    }
    obs::RequestEvent e;
    e.kind = obs::RequestEventKind::kSubmit;
    e.t_ms = opts_.clock_ms();
    tl->add(std::move(e));
    req->timeline = std::move(tl);
  }
  std::future<RequestOutcome> fut = req->done.get_future();

  const Admission a = queue_->offer(req, opts_.clock_ms());
  out.admission = a;
  if (a != Admission::kAdmitted) {
    record_refusal(a, tenant);
    if (req != nullptr && req->timeline != nullptr) {
      // Refused requests always reach the flight recorder: the tail-
      // sampling policy retains every one of them.
      obs::RequestEvent e;
      e.kind = a == Admission::kShedWatermark
                   ? obs::RequestEventKind::kShed
                   : obs::RequestEventKind::kReject;
      e.t_ms = opts_.clock_ms();
      e.queue_depth = queue_->depth();
      e.detail = admission_reason(a);
      req->timeline->add(std::move(e));
      req->timeline->status = a == Admission::kShedWatermark
                                  ? obs::RequestStatus::kShed
                                  : obs::RequestStatus::kRejected;
      flight_->offer(std::move(*req->timeline), /*shard_hint=*/-1);
    }
    return out;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  m_admitted_->add();
  const int depth = queue_->depth();
  m_queue_depth_->set(depth);
  m_queue_depth_peak_->update_max(depth);
  int peak = depth_peak_.load(std::memory_order_relaxed);
  while (depth > peak && !depth_peak_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  out.outcome = std::move(fut);
  return out;
}

void ServingEngine::scheduler_main() {
  for (;;) {
    std::optional<Batch> b = queue_->pop_batch(opts_.clock_ms);
    if (!b.has_value()) break;  // closed and drained
    const double now = opts_.clock_ms();
    const int depth_after = queue_->depth();
    b->id = batches_formed_.fetch_add(1, std::memory_order_relaxed);
    for (RequestPtr& r : b->requests) {
      // schedule_ms (and queue-wait) are stamped here, at batch formation;
      // start_ms follows once a worker picks the batch up.
      m_queue_wait_->observe(now - r->enqueue_ms);
      if (r->timeline != nullptr) {
        // The scheduler owns the batch (and its requests) here, so the
        // append is unsynchronized by design.
        obs::RequestEvent e;
        e.kind = obs::RequestEventKind::kBatchFormed;
        e.t_ms = now;
        e.batch_id = b->id;
        e.batch_size = b->size();
        e.queue_depth = depth_after;
        r->timeline->add(std::move(e));
      }
    }
    b->formed_ms = now;
    m_batches_->add();
    m_batch_size_->observe(static_cast<double>(b->size()));
    m_queue_depth_->set(depth_after);

    std::unique_lock<std::mutex> lk(batch_mu_);
    batch_cv_.wait(lk, [this] {
      return static_cast<int>(batches_.size()) < opts_.num_workers;
    });
    batches_.push_back(std::move(*b));
    batch_cv_.notify_all();
  }
  std::lock_guard<std::mutex> lk(batch_mu_);
  scheduler_done_ = true;
  scheduler_alive_.store(false, std::memory_order_release);
  batch_cv_.notify_all();
}

void ServingEngine::worker_main(int worker_id) {
  // One private ServingContext per tenant, built lazily on this worker's
  // first batch of that tenant: the plan-backed page table is reused across
  // every subsequent request the worker serves for the tenant, while the
  // physical pages behind it are borrowed from the engine-wide pool per
  // request — steady-state serving performs no heap allocations for node
  // outputs and shares pages across the whole worker pool.
  std::vector<std::unique_ptr<ServingContext>> contexts(tenants_.size());
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lk(batch_mu_);
      batch_cv_.wait(lk, [this] {
        return !batches_.empty() || scheduler_done_;
      });
      if (batches_.empty()) {
        // Scheduler done and queue drained: this worker is exiting.
        workers_alive_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
      batch = std::move(batches_.front());
      batches_.pop_front();
      batch_cv_.notify_all();  // wake the scheduler's bounded-queue wait
    }
    execute_batch(std::move(batch), contexts, worker_id);
  }
}

void ServingEngine::execute_batch(
    Batch batch, std::vector<std::unique_ptr<ServingContext>>& contexts,
    int worker_id) {
  const TenantSpec& tenant = tenants_[static_cast<size_t>(batch.tenant)];
  TenantInstruments& ti = tenant_metrics_[static_cast<size_t>(batch.tenant)];
  auto& ctx = contexts[static_cast<size_t>(batch.tenant)];
  if (ctx == nullptr && tenant.run.use_arena) {
    // Page table is private to this worker; the physical pages behind it
    // come from the engine-wide pool and are returned after every request,
    // so workers and tenants time-share one page set.
    ctx = tenant.model->make_serving_context(
        tenant.run.batch, tenant.run.input_hw, opts_.page_pool);
  }
  // The ShapeVariant binding every request in this batch runs with.
  const std::string binding =
      tenant.run.batch == 0 && tenant.run.input_hw == 0
          ? "seed"
          : "b" + std::to_string(tenant.run.batch) + " hw" +
                std::to_string(tenant.run.input_hw);
  for (RequestPtr& req : batch.requests) {
    RequestOutcome outcome;
    outcome.id = req->id;
    outcome.tenant = req->tenant;
    outcome.enqueue_ms = req->enqueue_ms;
    outcome.schedule_ms = batch.formed_ms;
    outcome.batch_size = batch.size();
    outcome.start_ms = opts_.clock_ms();
    if (req->timeline != nullptr) {
      obs::RequestEvent e;
      e.kind = obs::RequestEventKind::kWorkerStart;
      e.t_ms = outcome.start_ms;
      e.worker_id = worker_id;
      e.batch_id = batch.id;
      e.batch_size = batch.size();
      req->timeline->add(std::move(e));
    }
    RunOptions ropts = tenant.run;
    ropts.input_seed = req->input_seed;
    ropts.serving_context = ctx.get();
    try {
      const RunResult r = tenant.model->run(ropts);
      outcome.sim_latency_ms = r.latency_ms;
      if (req->timeline != nullptr) {
        obs::RequestEvent e;
        e.kind = obs::RequestEventKind::kRun;
        e.t_ms = opts_.clock_ms();
        e.worker_id = worker_id;
        e.batch_id = batch.id;
        e.sim_latency_ms = r.latency_ms;
        e.detail = binding;
        req->timeline->add(std::move(e));
      }
      if (opts_.sim_pacing > 0.0) {
        // Device-bound service stage: block for the scaled simulated time.
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            r.latency_ms * opts_.sim_pacing));
      }
      outcome.finish_ms = opts_.clock_ms();
      m_service_->observe(outcome.service_ms());
      m_e2e_->observe(outcome.e2e_ms());
      m_completed_->add();
      ti.completed->add();
      ti.e2e->observe(outcome.e2e_ms());
      completed_.fetch_add(1, std::memory_order_relaxed);
      completed_per_tenant_[static_cast<size_t>(req->tenant)]->fetch_add(
          1, std::memory_order_relaxed);
      if (req->timeline != nullptr) {
        obs::RequestEvent e;
        e.kind = obs::RequestEventKind::kFinish;
        e.t_ms = outcome.finish_ms;
        e.worker_id = worker_id;
        req->timeline->add(std::move(e));
        req->timeline->status = obs::RequestStatus::kCompleted;
        exemplars_->record("serve.e2e_ms", outcome.e2e_ms(), req->id);
        exemplars_->record("serve.queue_wait_ms", outcome.queue_wait_ms(),
                           req->id);
        flight_->offer(std::move(*req->timeline), worker_id);
      }
      req->done.set_value(outcome);
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      ti.failed->add();
      std::exception_ptr err = std::current_exception();
      if (req->timeline != nullptr) {
        std::string what = "unknown error";
        try {
          std::rethrow_exception(err);
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        obs::RequestEvent e;
        e.kind = obs::RequestEventKind::kFinish;
        e.t_ms = opts_.clock_ms();
        e.worker_id = worker_id;
        e.detail = what;
        req->timeline->add(std::move(e));
        req->timeline->status = obs::RequestStatus::kFailed;
        // Failed requests are always retained (tail-sampling policy).
        flight_->offer(std::move(*req->timeline), worker_id);
      }
      req->done.set_exception(err);
    }
  }
}

void ServingEngine::stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  running_.store(false, std::memory_order_release);
  queue_->close();  // scheduler drains remaining lanes, then signals done
  scheduler_.join();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  m_queue_depth_->set(0);
}

EngineHealth ServingEngine::health() const {
  EngineHealth h;
  h.serving = running_.load(std::memory_order_acquire);
  h.scheduler_alive = scheduler_alive_.load(std::memory_order_acquire);
  h.workers = workers_alive_.load(std::memory_order_acquire);
  {
    // queue_ is created under lifecycle_mu_ in start(); take it so a probe
    // racing start() reads a fully constructed queue or none at all.
    std::lock_guard<std::mutex> lk(lifecycle_mu_);
    h.queue_open = queue_ != nullptr && !queue_->closed();
  }
  return h;
}

EngineStats ServingEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.rejected_unknown_tenant = rejected_unknown_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_formed_.load(std::memory_order_relaxed);
  s.queue_depth_peak = depth_peak_.load(std::memory_order_relaxed);
  s.completed_per_tenant.reserve(completed_per_tenant_.size());
  for (const auto& c : completed_per_tenant_) {
    s.completed_per_tenant.push_back(c->load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace igc::serve
