// Bounded, thread-safe multi-tenant request queue with admission control
// and deterministic dynamic-batch formation — the scheduler's data plane.
//
// Structure: one FIFO lane per tenant behind a single mutex, plus a global
// depth counter that admission control gates on:
//
//   depth >= max_depth       -> kRejectedQueueFull  (hard cap)
//   depth >= shed_watermark  -> kShedWatermark      (early load shedding)
//   closed                   -> kRejectedShutdown
//
// Batch formation is a pure function of (lane contents, now_ms), exposed as
// try_form_batch(now_ms) so tests drive it with a scripted clock and get
// byte-deterministic behavior — no background thread required. A batch for
// tenant T dispatches when either trigger fires:
//
//   * size:    T's lane holds max_batch_size requests, or
//   * timeout: T's oldest request has waited >= max_wait_ms
//              (a closed queue counts as expired, so draining flushes
//              partial batches immediately).
//
// Tenant selection is round-robin from a cursor that advances past each
// chosen tenant, scanning size-triggered lanes before timeout-triggered
// ones; under saturation every lane is always full, so each of T tenants
// gets exactly every T-th batch — no tenant starves (tested).
//
// The blocking pop_batch() wrapper adds the scheduler thread's waiting
// logic: it sleeps until the earliest timeout deadline or a notification
// from offer()/close(), and returns nullopt only when the queue is closed
// and fully drained.
#pragma once

#include <condition_variable>
#include <functional>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace igc::serve {

/// One dispatchable unit: up to max_batch_size requests of a single tenant,
/// popped from the queue in FIFO order.
struct Batch {
  int tenant = -1;
  /// Engine-wide batch sequence number, stamped by the scheduler when the
  /// batch is formed (-1 until then). Request timelines reference it.
  int64_t id = -1;
  /// Engine-clock time the batch was formed (each member's schedule_ms).
  double formed_ms = 0.0;
  std::vector<RequestPtr> requests;

  int size() const { return static_cast<int>(requests.size()); }
};

class RequestQueue {
 public:
  struct Options {
    int num_tenants = 1;
    /// Hard queue capacity across all tenants (inclusive bound on depth).
    int max_depth = 64;
    /// Depth at which new arrivals are shed; < 0 means 3/4 of max_depth
    /// (rounded up, at least 1). Set equal to max_depth to disable
    /// watermark shedding and keep only the hard cap.
    int shed_watermark = -1;
    /// Size trigger: a lane with this many requests dispatches immediately.
    int max_batch_size = 4;
    /// Timeout trigger: a lane whose head has waited this long dispatches
    /// whatever it holds. 0 dispatches any non-empty lane immediately.
    double max_wait_ms = 1.0;
  };

  explicit RequestQueue(Options opts);

  /// Thread-safe admission at time `now_ms`. On kAdmitted the request is
  /// moved into its tenant lane (req becomes null) and its enqueue_ms is
  /// stamped; on any refusal req is left untouched for the caller to
  /// dispose of. Unknown tenants answer kRejectedUnknownTenant.
  Admission offer(RequestPtr& req, double now_ms);

  /// Stops admission (subsequent offers answer kRejectedShutdown) and makes
  /// every queued request immediately dispatchable so drains flush partial
  /// batches. Idempotent; wakes any pop_batch() waiter.
  void close();
  bool closed() const;

  /// Requests currently queued across all lanes.
  int depth() const;

  /// Deterministic batch formation at time `now_ms` (see file comment).
  /// Returns nullopt when no trigger has fired.
  std::optional<Batch> try_form_batch(double now_ms);

  /// Earliest engine-clock time at which a timeout trigger will fire, or
  /// +infinity when the queue is empty (nothing to wait for). A size-
  /// triggered lane answers `now` from try_form_batch, never a deadline.
  double next_deadline_ms() const;

  /// Blocking companion of try_form_batch for the scheduler thread: waits
  /// (on `now_ms()`'s timeline, converted to real waits) until a batch is
  /// dispatchable, then forms and returns it. Returns nullopt only when
  /// closed and drained.
  std::optional<Batch> pop_batch(const std::function<double()>& now_ms);

 private:
  std::optional<Batch> try_form_batch_locked(double now_ms);
  double next_deadline_ms_locked() const;

  const Options opts_;
  const int shed_watermark_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<RequestPtr>> lanes_;  // one FIFO per tenant
  int depth_ = 0;
  int rr_cursor_ = 0;  // next tenant considered first by batch formation
  bool closed_ = false;
};

}  // namespace igc::serve
