// Open-loop arrival generation for the serving engine and its benches.
//
// An open-loop load generator submits requests on a schedule that does NOT
// depend on how fast the server answers (unlike the closed-loop repeated
// run() benches, which can never overload the system). The classic model is
// a Poisson process: independent exponential inter-arrival gaps with mean
// 1/rate.
//
// The schedule is a pure function of (rate, duration, seed) through the
// repo-wide deterministic Rng — no wall-clock reads — so tests and benches
// replay identical arrival patterns on every machine.
#pragma once

#include <cstdint>
#include <vector>

namespace igc::serve {

/// Arrival offsets (milliseconds from the start of the run, strictly
/// covering [0, duration_ms)) of a Poisson process with the given rate.
/// Deterministic for fixed arguments; different seeds give independent
/// streams (one per tenant, say). rate_per_s and duration_ms must be > 0.
std::vector<double> poisson_arrival_times_ms(double rate_per_s,
                                             double duration_ms,
                                             uint64_t seed);

}  // namespace igc::serve
