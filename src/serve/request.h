// Request-level types of the serving engine: what a client submits, what
// admission control answers, and what the worker pool eventually delivers.
//
// Every request carries four engine-clock timestamps — enqueue (admission),
// schedule (its batch formed), start (a worker began executing it), finish
// (its inference returned) — so queue-wait, service, and end-to-end latency
// are all derivable per request and feed the serve.* latency histograms.
//
// Timestamps come from the engine's injectable monotonic clock
// (EngineOptions::clock_ms), never from wall-clock reads inside this layer,
// so tests drive a scripted clock and get deterministic latency accounting.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "obs/request_trace.h"

namespace igc::serve {

/// Admission control's verdict for one submitted request. Only kAdmitted
/// requests enter the queue; every other value is a refusal with a reason
/// (the "reject-with-reason" half of backpressure).
enum class Admission {
  kAdmitted,
  /// Queue depth at or over the shed watermark: load deliberately dropped
  /// early to protect the latency of what is already queued.
  kShedWatermark,
  /// Queue at its hard capacity; nothing more can be buffered.
  kRejectedQueueFull,
  /// The engine is stopping (or never started); no new work accepted.
  kRejectedShutdown,
  /// Unknown tenant id.
  kRejectedUnknownTenant,
};

/// Stable short reason string for logs, bench rows, and error messages.
inline const char* admission_reason(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kShedWatermark: return "shed_watermark";
    case Admission::kRejectedQueueFull: return "queue_full";
    case Admission::kRejectedShutdown: return "shutdown";
    case Admission::kRejectedUnknownTenant: return "unknown_tenant";
  }
  return "unknown";
}

/// What an admitted request resolves to once a worker has executed it.
struct RequestOutcome {
  uint64_t id = 0;
  int tenant = -1;
  /// Engine-clock milliseconds (see file comment). Always ordered
  /// enqueue_ms <= schedule_ms <= start_ms <= finish_ms.
  double enqueue_ms = 0.0;
  double schedule_ms = 0.0;
  double start_ms = 0.0;
  double finish_ms = 0.0;
  /// Size of the dynamic batch this request was dispatched in.
  int batch_size = 0;
  /// Simulated end-to-end latency of the inference (RunResult::latency_ms).
  double sim_latency_ms = 0.0;

  double queue_wait_ms() const { return schedule_ms - enqueue_ms; }
  double service_ms() const { return finish_ms - start_ms; }
  double e2e_ms() const { return finish_ms - enqueue_ms; }
};

/// One in-flight request while it moves queue -> batch -> worker. Owned by
/// exactly one stage at a time (the queue, then its batch), so no lock
/// guards the fields; the promise is fulfilled exactly once.
struct Request {
  uint64_t id = 0;
  int tenant = -1;
  uint64_t input_seed = 0;
  double enqueue_ms = 0.0;
  std::promise<RequestOutcome> done;
  /// Request-scoped trace (null when tracing is off). Rides with the
  /// request under the same single-owner rule as every other field, so
  /// event appends take no lock; the owning stage hands the finished
  /// timeline to the engine's FlightRecorder at the terminal event.
  std::unique_ptr<obs::RequestTimeline> timeline;
};

using RequestPtr = std::unique_ptr<Request>;

/// What submit() hands back: the admission verdict, plus a future that
/// resolves when the request finishes. The future is valid only when
/// admitted — the engine guarantees every admitted request's future
/// resolves, including requests still queued when stop() is called.
struct SubmitResult {
  Admission admission = Admission::kRejectedShutdown;
  std::future<RequestOutcome> outcome;

  bool admitted() const { return admission == Admission::kAdmitted; }
};

}  // namespace igc::serve
