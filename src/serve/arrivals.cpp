#include "serve/arrivals.h"

#include <cmath>

#include "core/error.h"
#include "core/rng.h"

namespace igc::serve {

std::vector<double> poisson_arrival_times_ms(double rate_per_s,
                                             double duration_ms,
                                             uint64_t seed) {
  if (!(rate_per_s > 0.0) || !(duration_ms > 0.0)) {
    throw Error("poisson_arrival_times_ms: rate and duration must be > 0");
  }
  Rng rng(seed);
  const double mean_gap_ms = 1000.0 / rate_per_s;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(duration_ms / mean_gap_ms) + 8);
  double t = 0.0;
  for (;;) {
    // Inverse-CDF sample of Exp(rate): -ln(1-u) * mean, u in [0, 1).
    // log1p(-u) is exact near u=0, where -log(1-u) would cancel.
    const double u = rng.next_double();
    t += -std::log1p(-u) * mean_gap_ms;
    if (t >= duration_ms) break;
    out.push_back(t);
  }
  return out;
}

}  // namespace igc::serve
