#include "graph/shape_infer.h"

#include "core/error.h"

namespace igc::graph {

void validate_binding(const ShapeSpec& spec, int64_t batch, int64_t hw) {
  IGC_CHECK_GE(batch, 1) << "shape binding: batch must be >= 1";
  if (batch != spec.seed_batch) {
    IGC_CHECK(spec.dynamic_batch)
        << "shape binding: batch " << batch
        << " on a model compiled with a static batch of " << spec.seed_batch;
    IGC_CHECK(batch >= spec.min_batch && batch <= spec.max_batch)
        << "shape binding: batch " << batch << " outside declared bounds ["
        << spec.min_batch << ", " << spec.max_batch << "]";
  }
  if (hw != 0 && hw != spec.seed_hw) {
    IGC_CHECK(spec.dynamic_hw)
        << "shape binding: resolution " << hw << "x" << hw
        << " on a model compiled for a static " << spec.seed_hw << "x"
        << spec.seed_hw << " input (detection/segmentation graphs bake their "
           "anchor grids and skip alignment for one resolution)";
    IGC_CHECK(hw >= spec.min_hw && hw <= spec.max_hw)
        << "shape binding: resolution " << hw << " outside declared bounds ["
        << spec.min_hw << ", " << spec.max_hw << "]";
  }
}

namespace {

const Shape& in_shape(const Graph& g, const Node& n, size_t i) {
  return g.node(n.inputs[i]).out_shape;
}

}  // namespace

Graph rebind_shapes(const Graph& g, int64_t batch, int64_t hw) {
  IGC_CHECK_GE(batch, 1);
  IGC_CHECK_GE(hw, 0);
  Graph out = g;
  for (Node& n : out.nodes()) {
    switch (n.kind) {
      case OpKind::kInput:
        // Only the image-style rank-4 inputs are dynamically bound;
        // parameter inputs (e.g. an ROI list) keep their seed shape.
        if (n.out_shape.ndim() == 4) {
          n.out_shape = Shape{batch, n.out_shape[1],
                              hw > 0 ? hw : n.out_shape[2],
                              hw > 0 ? hw : n.out_shape[3]};
        }
        break;
      case OpKind::kConstant:
        break;
      case OpKind::kConv2d: {
        const Shape& s = in_shape(out, n, 0);
        IGC_CHECK_EQ(s[1], n.conv.in_channels)
            << n.name << ": rebinding changed the channel count";
        n.conv.batch = s[0];
        n.conv.in_h = s[2];
        n.conv.in_w = s[3];
        IGC_CHECK(n.conv.out_h() >= 1 && n.conv.out_w() >= 1)
            << n.name << ": input resolution too small — conv output would be "
            << n.conv.out_h() << "x" << n.conv.out_w();
        n.out_shape =
            Shape{s[0], n.conv.out_channels, n.conv.out_h(), n.conv.out_w()};
        break;
      }
      case OpKind::kConv2dTranspose: {
        const Shape& s = in_shape(out, n, 0);
        IGC_CHECK_EQ(s[1], n.deconv.in_channels)
            << n.name << ": rebinding changed the channel count";
        n.deconv.batch = s[0];
        n.deconv.in_h = s[2];
        n.deconv.in_w = s[3];
        n.out_shape = Shape{s[0], n.deconv.out_channels, n.deconv.out_h(),
                            n.deconv.out_w()};
        break;
      }
      case OpKind::kScaleShift:
        IGC_CHECK_EQ(in_shape(out, n, 0)[1], n.scale.numel())
            << n.name << ": rebinding changed the channel count";
        n.out_shape = in_shape(out, n, 0);
        break;
      case OpKind::kActivation:
      case OpKind::kSoftmax:
      case OpKind::kDeviceCopy:
        n.out_shape = in_shape(out, n, 0);
        break;
      case OpKind::kAdd:
        IGC_CHECK(in_shape(out, n, 0) == in_shape(out, n, 1))
            << n.name << ": add shape mismatch after rebinding (skip "
            << "connections must stay aligned — is the resolution divisible "
            << "by the network stride?)";
        n.out_shape = in_shape(out, n, 0);
        break;
      case OpKind::kConcat: {
        const Shape& first = in_shape(out, n, 0);
        int64_t c = 0;
        for (size_t i = 0; i < n.inputs.size(); ++i) {
          const Shape& s = in_shape(out, n, i);
          IGC_CHECK(s[0] == first[0] && s[2] == first[2] && s[3] == first[3])
              << n.name << ": concat branch shapes diverged after rebinding";
          c += s[1];
        }
        n.out_shape = Shape{first[0], c, first[2], first[3]};
        break;
      }
      case OpKind::kPool2d: {
        const Shape& s = in_shape(out, n, 0);
        const int64_t oh = n.pool.out_dim(s[2]);
        const int64_t ow = n.pool.out_dim(s[3]);
        IGC_CHECK(oh >= 1 && ow >= 1)
            << n.name << ": input resolution too small for pooling window";
        n.out_shape = Shape{s[0], s[1], oh, ow};
        break;
      }
      case OpKind::kGlobalAvgPool: {
        const Shape& s = in_shape(out, n, 0);
        n.out_shape = Shape{s[0], s[1], 1, 1};
        break;
      }
      case OpKind::kDense: {
        const Shape& s = in_shape(out, n, 0);
        IGC_CHECK_EQ(s[1], n.dense.in_features)
            << n.name << ": rebinding changed the flattened feature count "
            << "from " << n.dense.in_features << " to " << s[1]
            << " — heads without global pooling support dynamic batch only";
        n.dense.batch = s[0];
        n.out_shape = Shape{s[0], n.dense.out_features};
        break;
      }
      case OpKind::kFlatten: {
        const Shape& s = in_shape(out, n, 0);
        n.out_shape = Shape{s[0], s.numel() / s[0]};
        break;
      }
      case OpKind::kUpsample2x: {
        const Shape& s = in_shape(out, n, 0);
        n.out_shape = Shape{s[0], s[1], 2 * s[2], 2 * s[3]};
        break;
      }
      case OpKind::kMultiboxDetection: {
        const Shape& cs = in_shape(out, n, 0);
        const int64_t num_anchors = cs[2];
        IGC_CHECK(n.anchors.shape() == Shape({num_anchors, 4}))
            << n.name << ": input resolution changes the anchor grid — "
            << "detection graphs declare dynamic batch only";
        IGC_CHECK(in_shape(out, n, 1) == Shape({cs[0], num_anchors * 4}))
            << n.name << ": loc prediction shape mismatch after rebinding";
        n.out_shape = Shape{cs[0], num_anchors, 6};
        break;
      }
      case OpKind::kSsdDetection: {
        int64_t total_anchors = 0;
        int64_t b = -1;
        for (size_t i = 0; i + 1 < n.inputs.size(); i += 2) {
          const Shape& cs = in_shape(out, n, i);
          const Shape& ls = in_shape(out, n, i + 1);
          if (b < 0) b = cs[0];
          IGC_CHECK_EQ(cs[0], b);
          const int64_t a = cs[1] / n.ssd_num_classes;
          IGC_CHECK(ls[1] == a * 4 && ls[2] == cs[2] && ls[3] == cs[3])
              << n.name << ": SSD head shapes diverged after rebinding";
          total_anchors += a * cs[2] * cs[3];
        }
        IGC_CHECK(n.anchors.shape() == Shape({total_anchors, 4}))
            << n.name << ": input resolution changes the anchor grid ("
            << n.anchors.shape()[0] << " baked anchors vs " << total_anchors
            << " implied) — SSD graphs declare dynamic batch only";
        n.out_shape = Shape{b, total_anchors, 6};
        break;
      }
      case OpKind::kYoloDecode: {
        const Shape& s = in_shape(out, n, 0);
        const int64_t a = static_cast<int64_t>(n.yolo.anchors.size());
        IGC_CHECK_EQ(s[1], a * (5 + n.yolo.num_classes))
            << n.name << ": YOLO head channels diverged after rebinding";
        n.out_shape = Shape{s[0], s[2] * s[3] * a, 6};
        break;
      }
      case OpKind::kDetectionConcat: {
        const Shape& first = in_shape(out, n, 0);
        int64_t total = 0;
        for (size_t i = 0; i < n.inputs.size(); ++i) {
          const Shape& s = in_shape(out, n, i);
          IGC_CHECK_EQ(s[0], first[0]);
          total += s[1];
        }
        n.out_shape = Shape{first[0], total, 6};
        break;
      }
      case OpKind::kBoxNms:
        n.out_shape = in_shape(out, n, 0);
        break;
      case OpKind::kRoiAlign: {
        const Shape& fs = in_shape(out, n, 0);
        const Shape& rs = in_shape(out, n, 1);
        n.out_shape = Shape{rs[0], fs[1], n.roi.pooled_h, n.roi.pooled_w};
        break;
      }
    }
  }
  out.validate();
  return out;
}

}  // namespace igc::graph
