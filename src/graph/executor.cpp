#include "graph/executor.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "ops/nn/conv2d.h"
#include "ops/nn/nn_ops.h"
#include "ops/vision/nms.h"
#include "ops/vision/roi_align.h"
#include "ops/vision/yolo.h"
#include "sim/simulator.h"
#include "sim/timing_model.h"
#include "tune/conv_tuner.h"

namespace igc::graph {
namespace {

/// Tracks one node's runtime value: the tensor (always shape-correct) and
/// whether its contents are real numerics or placeholder zeros.
struct Value {
  Tensor tensor;
  bool materialized = false;
};

/// Synthetic detection-head tensors for shapes-only execution. Scores follow
/// an edge-realistic distribution: the background class dominates almost
/// every anchor, with a small fraction of genuine detections, so NMS does a
/// production-like amount of work (a few hundred to ~1k candidates).
///
/// The head layout is (B, A*C, H, W): channel ch belongs to class ch % C,
/// class 0 = background.
Tensor synthesize_ssd_cls(const Shape& shape, int64_t num_classes, Rng& rng) {
  Tensor t(shape, DType::kFloat32);
  const int64_t b = shape[0];
  const int64_t channels = shape[1];
  const int64_t hw = shape.numel() / (b * channels);
  float* p = t.data_f32();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ch = 0; ch < channels; ++ch) {
      const int64_t cls = ch % num_classes;
      for (int64_t i = 0; i < hw; ++i) {
        float v;
        if (cls == 0) {
          v = 6.0f;  // strong background logit
        } else if (rng.next_double() < 0.002) {
          v = rng.next_float(2.0f, 7.0f);  // a genuine detection
        } else {
          v = rng.next_float(-6.0f, -2.0f);
        }
        p[(bi * channels + ch) * hw + i] = v;
      }
    }
  }
  return t;
}

Tensor synthesize_yolo_head(const Shape& shape, Rng& rng) {
  // Objectness logits mostly strongly negative; decode sees ~1% positives.
  Tensor t(shape, DType::kFloat32);
  for (float& v : t.span_f32()) {
    v = rng.next_double() < 0.01 ? rng.next_float(0.0f, 2.0f)
                                 : rng.next_float(-8.0f, -4.0f);
  }
  return t;
}

Tensor synthesize_nms_input(const Shape& shape, Rng& rng) {
  Tensor t = Tensor::full(shape, -1.0f);
  const int64_t n = shape[0] * shape[1];
  float* p = t.data_f32();
  for (int64_t i = 0; i < n; ++i) {
    if (rng.next_double() >= 0.02) continue;
    const float x1 = rng.next_float(0.0f, 0.8f);
    const float y1 = rng.next_float(0.0f, 0.8f);
    p[i * 6 + 0] = static_cast<float>(rng.next_int(0, 19));
    p[i * 6 + 1] = rng.next_float(0.05f, 1.0f);
    p[i * 6 + 2] = x1;
    p[i * 6 + 3] = y1;
    p[i * 6 + 4] = x1 + rng.next_float(0.02f, 0.2f);
    p[i * 6 + 5] = y1 + rng.next_float(0.02f, 0.2f);
  }
  return t;
}

class ExecutorImpl {
 public:
  ExecutorImpl(const Graph& g, const sim::Platform& platform,
               const ExecOptions& opts, Rng& rng)
      : g_(g), platform_(platform), opts_(opts), rng_(rng),
        gpu_(platform.gpu, clock_) {}

  ExecResult run() {
    g_.validate();
    values_.resize(static_cast<size_t>(g_.num_nodes()));
    layout_block_.assign(static_cast<size_t>(g_.num_nodes()), 1);
    compute_liveness();

    // Reference counts for eager buffer release (the runtime analogue of the
    // memory planner): a node's tensor is dropped after its last consumer.
    std::vector<int> pending(static_cast<size_t>(g_.num_nodes()), 0);
    for (const Node& n : g_.nodes()) {
      if (!live_[static_cast<size_t>(n.id)]) continue;
      for (int in : n.inputs) ++pending[static_cast<size_t>(in)];
    }

    ExecResult result;
    for (const Node& n : g_.nodes()) {
      if (!live_[static_cast<size_t>(n.id)]) continue;
      const double before = clock_.total_ms();
      exec_node(n);
      const double delta = clock_.total_ms() - before;
      attribute(n.kind, delta, result);
      for (int in : n.inputs) {
        if (--pending[static_cast<size_t>(in)] == 0 && in != g_.output()) {
          val(in).tensor = Tensor();  // release buffer early
        }
      }
    }
    result.output = values_[static_cast<size_t>(g_.output())].tensor;
    result.latency_ms = clock_.total_ms();
    result.events = clock_.events();
    return result;
  }

 private:
  void compute_liveness() {
    live_.assign(static_cast<size_t>(g_.num_nodes()), false);
    live_[static_cast<size_t>(g_.output())] = true;
    for (int id = g_.num_nodes() - 1; id >= 0; --id) {
      if (!live_[static_cast<size_t>(id)]) continue;
      for (int in : g_.node(id).inputs) live_[static_cast<size_t>(in)] = true;
    }
  }

  static void attribute(OpKind kind, double ms, ExecResult& r) {
    switch (kind) {
      case OpKind::kConv2d:
        r.conv_ms += ms;
        break;
      case OpKind::kMultiboxDetection:
      case OpKind::kSsdDetection:
      case OpKind::kYoloDecode:
      case OpKind::kBoxNms:
      case OpKind::kRoiAlign:
      case OpKind::kDetectionConcat:
        r.vision_ms += ms;
        break;
      case OpKind::kDeviceCopy:
        r.copy_ms += ms;
        break;
      default:
        r.other_ms += ms;
        break;
    }
  }

  Value& val(int id) { return values_[static_cast<size_t>(id)]; }

  const Tensor& in_tensor(const Node& n, size_t i = 0) {
    return val(n.inputs[i]).tensor;
  }
  bool in_materialized(const Node& n) {
    for (int in : n.inputs) {
      if (!val(in).materialized) return false;
    }
    return !n.inputs.empty();
  }

  /// Charges one elementwise GPU kernel (or the CPU equivalent).
  void charge_elementwise(const Node& n, int64_t numel, int inputs_per_elem,
                          int64_t flops_per_elem) {
    if (n.place == Place::kCpu) {
      clock_.charge_fixed(
          sim::cpu_latency_ms(platform_.cpu, numel * flops_per_elem,
                              4 * numel * (inputs_per_elem + 1), 0.9),
          n.name);
    } else {
      clock_.charge(platform_.gpu,
                    ops::elementwise_kernel_cost(n.name, numel, inputs_per_elem,
                                                 flops_per_elem));
    }
  }

  /// Charges a layout transform on an edge whose producer layout block
  /// differs from what this node requires.
  void charge_layout_edges(const Node& n, int required_block) {
    for (int in : n.inputs) {
      const int have = layout_block_[static_cast<size_t>(in)];
      if (have == required_block) continue;
      const int64_t numel = g_.node(in).out_shape.numel();
      sim::KernelLaunch k;
      k.name = "layout_transform_" + g_.node(in).name;
      k.flops = numel;
      k.dram_read_bytes = 4 * numel;
      k.dram_write_bytes = 4 * numel;
      k.work_items = numel;
      k.work_group_size = 64;
      k.compute_efficiency = 0.6;
      clock_.charge(platform_.gpu, k);
    }
  }

  /// Layout a node's output carries forward.
  int propagate_layout(const Node& n, int own_block) {
    switch (n.kind) {
      case OpKind::kConv2d:
        return own_block;
      case OpKind::kActivation:
      case OpKind::kScaleShift:
      case OpKind::kAdd:
      case OpKind::kPool2d:
      case OpKind::kUpsample2x:
      case OpKind::kDeviceCopy:
        return n.inputs.empty() ? 1 : layout_block_[static_cast<size_t>(n.inputs[0])];
      default:
        return 1;  // everything else requires/produces plain layout
    }
  }

  void exec_node(const Node& n) {
    switch (n.kind) {
      case OpKind::kInput: {
        Value& v = val(n.id);
        v.tensor = Tensor::random_uniform(n.out_shape, rng_, 0.0f, 1.0f);
        v.materialized = true;
        layout_block_[static_cast<size_t>(n.id)] = 1;
        return;
      }
      case OpKind::kConv2d:
        exec_conv(n);
        return;
      case OpKind::kConv2dTranspose: {
        charge_layout_edges(n, 1);
        if (n.place == Place::kCpu) {
          clock_.charge_fixed(
              sim::cpu_latency_ms(platform_.cpu, n.deconv.flops(),
                                  n.weight.nbytes(), 0.9),
              n.name);
        } else {
          clock_.charge(platform_.gpu,
                        ops::conv2d_transpose_kernel_cost(n.deconv,
                                                          platform_.gpu));
        }
        finish_heavy(n, [&] {
          Tensor t = ops::conv2d_transpose_reference(
              in_tensor(n), n.weight, n.bias.defined() ? &n.bias : nullptr,
              n.deconv);
          if (n.fused_activation) {
            t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
          }
          return t;
        });
        return;
      }
      case OpKind::kScaleShift: {
        charge_elementwise(n, n.out_shape.numel(), 1, 2);
        finish_elementwise(n, [&] {
          Tensor t = ops::scale_shift_reference(in_tensor(n), n.scale, n.shift);
          return t;
        });
        return;
      }
      case OpKind::kActivation: {
        charge_elementwise(n, n.out_shape.numel(), 1, 2);
        finish_elementwise(n, [&] {
          return ops::activation_reference(in_tensor(n), n.act, n.act_alpha);
        });
        return;
      }
      case OpKind::kAdd: {
        charge_elementwise(n, n.out_shape.numel(), 2, 1);
        finish_elementwise(n, [&] {
          Tensor t = ops::add_reference(in_tensor(n, 0), in_tensor(n, 1));
          if (n.fused_activation) {
            t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
          }
          return t;
        });
        return;
      }
      case OpKind::kConcat: {
        charge_elementwise(n, n.out_shape.numel(), 1, 0);
        finish_elementwise(n, [&] {
          std::vector<Tensor> ins;
          for (int in : n.inputs) ins.push_back(val(in).tensor);
          return ops::concat_channels_reference(ins);
        });
        return;
      }
      case OpKind::kPool2d: {
        const Shape& s = g_.node(n.inputs[0]).out_shape;
        if (n.place == Place::kCpu) {
          charge_elementwise(n, n.out_shape.numel(), 1,
                             n.pool.kernel * n.pool.kernel);
        } else {
          clock_.charge(platform_.gpu, ops::pool2d_kernel_cost(s, n.pool));
        }
        finish_elementwise(n, [&] { return ops::pool2d_reference(in_tensor(n), n.pool); });
        return;
      }
      case OpKind::kGlobalAvgPool: {
        charge_elementwise(n, g_.node(n.inputs[0]).out_shape.numel(), 1, 1);
        finish_elementwise(n,
                           [&] { return ops::global_avg_pool_reference(in_tensor(n)); });
        return;
      }
      case OpKind::kDense: {
        charge_layout_edges(n, 1);
        if (n.place == Place::kCpu) {
          clock_.charge_fixed(sim::cpu_latency_ms(platform_.cpu, n.dense.flops(),
                                                  n.weight.nbytes(), 0.9),
                              n.name);
        } else {
          clock_.charge(platform_.gpu,
                        ops::dense_kernel_cost(n.dense, platform_.gpu));
        }
        finish_heavy(n, [&] {
          Tensor t = ops::dense_reference(in_tensor(n), n.weight,
                                          n.bias.defined() ? &n.bias : nullptr,
                                          n.dense);
          if (n.fused_activation) {
            t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
          }
          return t;
        });
        return;
      }
      case OpKind::kFlatten: {
        charge_layout_edges(n, 1);
        // A view: no kernel.
        Value& v = val(n.id);
        v.tensor = val(n.inputs[0]).tensor.reshape(n.out_shape);
        v.materialized = val(n.inputs[0]).materialized;
        layout_block_[static_cast<size_t>(n.id)] = 1;
        return;
      }
      case OpKind::kSoftmax: {
        charge_layout_edges(n, 1);
        charge_elementwise(n, n.out_shape.numel(), 1, 4);
        finish_elementwise(n, [&] { return ops::softmax_reference(in_tensor(n)); });
        return;
      }
      case OpKind::kUpsample2x: {
        charge_elementwise(n, n.out_shape.numel(), 1, 0);
        finish_elementwise(n, [&] { return ops::upsample2x_reference(in_tensor(n)); });
        return;
      }
      case OpKind::kDeviceCopy: {
        const int64_t bytes = n.out_shape.numel() * 4;
        clock_.charge_copy(platform_.gpu, bytes, n.name);
        Value& v = val(n.id);
        v.tensor = val(n.inputs[0]).tensor;
        v.materialized = val(n.inputs[0]).materialized;
        layout_block_[static_cast<size_t>(n.id)] =
            layout_block_[static_cast<size_t>(n.inputs[0])];
        return;
      }
      case OpKind::kMultiboxDetection:
        exec_multibox(n);
        return;
      case OpKind::kSsdDetection:
        exec_ssd_detection(n);
        return;
      case OpKind::kYoloDecode: {
        charge_layout_edges(n, 1);
        Tensor head = val(n.inputs[0]).materialized
                          ? in_tensor(n)
                          : synthesize_yolo_head(g_.node(n.inputs[0]).out_shape,
                                                 rng_);
        Value& v = val(n.id);
        if (n.place == Place::kCpu) {
          v.tensor = ops::yolo_decode_reference(head, n.yolo);
          clock_.charge_fixed(
              sim::cpu_latency_ms(platform_.cpu,
                                  head.numel() * 8, head.nbytes(), 0.9),
              n.name);
        } else {
          v.tensor = ops::yolo_decode_gpu(gpu_, head, n.yolo);
        }
        v.materialized = true;
        return;
      }
      case OpKind::kDetectionConcat: {
        charge_elementwise(n, n.out_shape.numel(), 1, 0);
        Value& v = val(n.id);
        v.tensor = Tensor(n.out_shape, DType::kFloat32);
        int64_t off = 0;
        const int64_t bsz = n.out_shape[0];
        const int64_t total = n.out_shape[1];
        for (int in : n.inputs) {
          const Tensor& t = val(in).materialized
                                ? val(in).tensor
                                : synthesize_nms_input(g_.node(in).out_shape, rng_);
          const int64_t ni = t.shape()[1];
          for (int64_t b = 0; b < bsz; ++b) {
            std::copy(t.data_f32() + b * ni * 6, t.data_f32() + (b + 1) * ni * 6,
                      v.tensor.data_f32() + (b * total + off) * 6);
          }
          off += ni;
        }
        v.materialized = true;
        return;
      }
      case OpKind::kBoxNms:
        exec_box_nms(n);
        return;
      case OpKind::kRoiAlign: {
        charge_layout_edges(n, 1);
        const bool have = in_materialized(n);
        Tensor feats = have ? in_tensor(n, 0)
                            : Tensor::zeros(g_.node(n.inputs[0]).out_shape);
        Tensor rois = in_tensor(n, 1);
        if (!val(n.inputs[1]).materialized) {
          // Synthesize plausible proposals inside the feature map.
          const Shape& fs = g_.node(n.inputs[0]).out_shape;
          rois = Tensor(g_.node(n.inputs[1]).out_shape, DType::kFloat32);
          for (int64_t r = 0; r < rois.shape()[0]; ++r) {
            float* row = rois.data_f32() + r * 5;
            row[0] = static_cast<float>(rng_.next_int(0, fs[0] - 1));
            const float x1 = rng_.next_float(0.0f, static_cast<float>(fs[3]) * 0.6f);
            const float y1 = rng_.next_float(0.0f, static_cast<float>(fs[2]) * 0.6f);
            row[1] = x1;
            row[2] = y1;
            row[3] = x1 + rng_.next_float(2.0f, static_cast<float>(fs[3]) * 0.4f);
            row[4] = y1 + rng_.next_float(2.0f, static_cast<float>(fs[2]) * 0.4f);
          }
        }
        Value& v = val(n.id);
        if (n.place == Place::kCpu) {
          v.tensor = ops::roi_align_reference(feats, rois, n.roi);
          clock_.charge_fixed(
              sim::cpu_latency_ms(platform_.cpu, n.out_shape.numel() * 40,
                                  feats.nbytes(), 0.9),
              n.name);
        } else {
          v.tensor = ops::roi_align_gpu(gpu_, feats, rois, n.roi);
        }
        v.materialized = true;
        return;
      }
    }
    IGC_CHECK(false) << "unhandled op " << op_kind_name(n.kind);
  }

  // Elementwise helpers: numerics only when inputs are materialized.
  template <typename Fn>
  void finish_elementwise(const Node& n, Fn&& compute) {
    Value& v = val(n.id);
    if (opts_.compute_numerics && in_materialized(n)) {
      v.tensor = compute();
      v.materialized = true;
    } else {
      v.tensor = Tensor::zeros(n.out_shape);
      v.materialized = false;
    }
    IGC_CHECK(v.tensor.shape() == n.out_shape)
        << n.name << ": " << v.tensor.shape().str();
    layout_block_[static_cast<size_t>(n.id)] = propagate_layout(n, 1);
  }

  template <typename Fn>
  void finish_heavy(const Node& n, Fn&& compute) {
    finish_elementwise(n, std::forward<Fn>(compute));
  }

  void exec_conv(const Node& n) {
    const int block = [&] {
      auto it = opts_.conv_layout_block.find(n.id);
      return it == opts_.conv_layout_block.end() ? 1 : it->second;
    }();
    charge_layout_edges(n, block);
    const tune::ScheduleConfig cfg =
        opts_.use_tuned_configs
            ? tune::lookup_or_default(n.conv, platform_.gpu, block, opts_.db)
            : [&] {
                // Untuned: the stock hand-written template (Table 5 Before).
                auto c = ops::conv2d_manual_schedule(n.conv, platform_.gpu);
                c.set("layout_block", block);
                return c;
              }();
    if (n.place == Place::kCpu) {
      clock_.charge_fixed(sim::cpu_latency_ms(platform_.cpu, n.conv.flops(),
                                              n.conv.min_bytes(), 0.9),
                          n.name);
    } else {
      sim::KernelLaunch k = ops::conv2d_kernel_cost(n.conv, cfg, platform_.gpu);
      if (n.fused_scale_shift) k.flops += 2 * n.out_shape.numel();
      if (n.fused_activation) k.flops += n.out_shape.numel();
      clock_.charge(platform_.gpu, k);
    }
    Value& v = val(n.id);
    if (opts_.compute_numerics && in_materialized(n)) {
      Tensor t = ops::conv2d_reference(
          in_tensor(n), n.weight, n.bias.defined() ? &n.bias : nullptr, n.conv);
      if (n.fused_scale_shift) {
        t = ops::scale_shift_reference(t, n.fused_scale, n.fused_shift);
      }
      if (n.fused_activation) {
        t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
      }
      v.tensor = std::move(t);
      v.materialized = true;
    } else {
      v.tensor = Tensor::zeros(n.out_shape);
      v.materialized = false;
    }
    layout_block_[static_cast<size_t>(n.id)] = block;
  }

  /// Shared tail of every multibox path: NMS over the decoded candidates on
  /// the placed device, with the matching cost.
  Tensor run_nms_stage(const Node& n, const Tensor& decoded,
                       const ops::NmsParams& nms) {
    if (n.place == Place::kCpu) {
      int64_t evals = 0;
      Tensor out = ops::box_nms_reference_counted(decoded, nms, &evals);
      const int64_t count = decoded.shape()[0] * decoded.shape()[1];
      const int64_t sort_flops = static_cast<int64_t>(
          static_cast<double>(count) *
          std::log2(static_cast<double>(count) + 2.0) * 4.0);
      clock_.charge_fixed(
          sim::cpu_latency_ms(platform_.cpu, evals * 16 + sort_flops,
                              decoded.nbytes() * 2, 0.3),
          n.name + "_nms_cpu");
      return out;
    }
    if (opts_.optimized_vision_ops) {
      return ops::box_nms_gpu(gpu_, decoded, nms);
    }
    return ops::box_nms_gpu_naive(gpu_, decoded, nms);
  }

  void exec_multibox(const Node& n) {
    charge_layout_edges(n, 1);
    const bool have = in_materialized(n);
    // The (B, C, N) class-probability tensor: dim 1 is the class axis
    // (class 0 = background). Synthesize realistic probabilities directly.
    Tensor cls = in_tensor(n, 0);
    if (!have) {
      const Shape& cs = g_.node(n.inputs[0]).out_shape;
      cls = Tensor(cs, DType::kFloat32);
      const int64_t nc = cs[1];
      const int64_t na = cs[2];
      for (int64_t b = 0; b < cs[0]; ++b) {
        for (int64_t c = 0; c < nc; ++c) {
          for (int64_t i = 0; i < na; ++i) {
            float v = c == 0 ? 0.95f : 0.002f;
            if (c != 0 && rng_.next_double() < 0.002) {
              v = rng_.next_float(0.2f, 0.9f);
            }
            cls.data_f32()[(b * nc + c) * na + i] = v;
          }
        }
      }
    }
    Tensor loc = have ? in_tensor(n, 1)
                      : Tensor::random_normal(g_.node(n.inputs[1]).out_shape,
                                              rng_, 0.3f);
    // Decode stage.
    const Tensor decoded =
        ops::multibox_decode_reference(cls, loc, n.anchors, n.mbox);
    if (n.place == Place::kCpu) {
      clock_.charge_fixed(
          sim::cpu_latency_ms(platform_.cpu, cls.numel() * 4,
                              cls.nbytes() + loc.nbytes(), 0.8),
          n.name + "_decode_cpu");
    } else {
      gpu_.launch_elementwise("multibox_decode",
                              cls.shape()[0] * n.anchors.shape()[0],
                              [](int64_t) {}, 2 * cls.shape()[1] + 20,
                              4 * (cls.shape()[1] + 8));
    }
    Value& v = val(n.id);
    v.tensor = run_nms_stage(n, decoded, n.mbox.nms);
    v.materialized = true;
  }

  void exec_ssd_detection(const Node& n) {
    charge_layout_edges(n, 1);
    const int64_t c1 = n.ssd_num_classes;
    const int64_t total = n.out_shape[1];
    const int64_t bsz = n.out_shape[0];

    // Assemble (B, C, N) class probabilities (softmax over classes) and
    // (B, N*4) localization deltas from the per-scale head tensors.
    Tensor cls_prob = Tensor::zeros(Shape{bsz, c1, total});
    Tensor loc_pred = Tensor::zeros(Shape{bsz, total * 4});
    int64_t anchor_off = 0;
    for (size_t h = 0; h + 1 < n.inputs.size(); h += 2) {
      const int cls_id = n.inputs[h];
      const int loc_id = n.inputs[h + 1];
      const Shape& cs = g_.node(cls_id).out_shape;
      const int64_t a = cs[1] / c1;
      const int64_t gh = cs[2];
      const int64_t gw = cs[3];
      const Tensor cls_t = val(cls_id).materialized
                               ? val(cls_id).tensor
                               : synthesize_ssd_cls(cs, c1, rng_);
      const Tensor loc_t =
          val(loc_id).materialized
              ? val(loc_id).tensor
              : Tensor::random_normal(g_.node(loc_id).out_shape, rng_, 0.3f);
      const float* cp = cls_t.data_f32();
      const float* lp = loc_t.data_f32();
      for (int64_t b = 0; b < bsz; ++b) {
        for (int64_t y = 0; y < gh; ++y) {
          for (int64_t x = 0; x < gw; ++x) {
            for (int64_t ai = 0; ai < a; ++ai) {
              const int64_t anchor = anchor_off + ((y * gw + x) * a + ai);
              // Softmax over the c1 class logits of this anchor.
              float maxv = -1e30f;
              for (int64_t c = 0; c < c1; ++c) {
                maxv = std::max(maxv,
                                cp[((b * a * c1 + ai * c1 + c) * gh + y) * gw + x]);
              }
              double sum = 0.0;
              for (int64_t c = 0; c < c1; ++c) {
                sum += std::exp(
                    cp[((b * a * c1 + ai * c1 + c) * gh + y) * gw + x] - maxv);
              }
              for (int64_t c = 0; c < c1; ++c) {
                const float e = std::exp(
                    cp[((b * a * c1 + ai * c1 + c) * gh + y) * gw + x] - maxv);
                cls_prob.data_f32()[(b * c1 + c) * total + anchor] =
                    static_cast<float>(e / sum);
              }
              for (int64_t d = 0; d < 4; ++d) {
                loc_pred.data_f32()[b * total * 4 + anchor * 4 + d] =
                    lp[((b * a * 4 + ai * 4 + d) * gh + y) * gw + x];
              }
            }
          }
        }
      }
      anchor_off += a * gh * gw;
    }
    IGC_CHECK_EQ(anchor_off, total);

    // Charge the assembly + per-anchor softmax as one elementwise kernel.
    charge_elementwise(n, bsz * total * c1, 1, 6);

    // Decode stage.
    const Tensor decoded =
        ops::multibox_decode_reference(cls_prob, loc_pred, n.anchors, n.mbox);
    if (n.place == Place::kCpu) {
      clock_.charge_fixed(
          sim::cpu_latency_ms(platform_.cpu, cls_prob.numel() * 4,
                              cls_prob.nbytes() + loc_pred.nbytes(), 0.8),
          n.name + "_decode_cpu");
    } else {
      gpu_.launch_elementwise("ssd_decode", bsz * total, [](int64_t) {},
                              2 * c1 + 20, 4 * (c1 + 8));
    }
    Value& v = val(n.id);
    v.tensor = run_nms_stage(n, decoded, n.mbox.nms);
    v.materialized = true;
  }

  void exec_box_nms(const Node& n) {
    charge_layout_edges(n, 1);
    Tensor in = val(n.inputs[0]).materialized
                    ? in_tensor(n)
                    : synthesize_nms_input(g_.node(n.inputs[0]).out_shape, rng_);
    Value& v = val(n.id);
    if (n.place == Place::kCpu) {
      int64_t evals = 0;
      v.tensor = ops::box_nms_reference_counted(in, n.nms, &evals);
      const int64_t count = in.shape()[0] * in.shape()[1];
      clock_.charge_fixed(
          sim::cpu_latency_ms(
              platform_.cpu,
              evals * 16 +
                  static_cast<int64_t>(static_cast<double>(count) *
                                       std::log2(static_cast<double>(count) + 2.0) * 4.0),
              in.nbytes() * 2, 0.3),
          n.name);
    } else if (opts_.optimized_vision_ops) {
      v.tensor = ops::box_nms_gpu(gpu_, in, n.nms);
    } else {
      v.tensor = ops::box_nms_gpu_naive(gpu_, in, n.nms);
    }
    v.materialized = true;
  }

  const Graph& g_;
  const sim::Platform& platform_;
  const ExecOptions& opts_;
  Rng& rng_;
  sim::SimClock clock_;
  sim::GpuSimulator gpu_;
  std::vector<Value> values_;
  std::vector<bool> live_;
  std::vector<int> layout_block_;
};

}  // namespace

ExecResult execute(const Graph& g, const sim::Platform& platform,
                   const ExecOptions& opts, Rng& input_rng) {
  return ExecutorImpl(g, platform, opts, input_rng).run();
}

}  // namespace igc::graph
