#include "graph/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <optional>
#include <thread>

#include "codegen/jit.h"
#include "core/error.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "ops/nn/conv2d.h"
#include "ops/nn/nn_ops.h"
#include "ops/vision/nms.h"
#include "ops/vision/roi_align.h"
#include "ops/vision/yolo.h"
#include "sim/simulator.h"
#include "sim/timing_model.h"
#include "tune/conv_tuner.h"

namespace igc::graph {
namespace {

/// Tracks one node's runtime value: the tensor (always shape-correct),
/// whether its contents are real numerics or placeholder data, and which
/// allocation backs it (a planned arena buffer, accounted heap bytes, or an
/// alias of its input).
struct Value {
  Tensor tensor;
  bool materialized = false;
  int arena_buffer = -1;   // arena buffer id backing this value, -1 if none
  int64_t heap_bytes = 0;  // accounted heap bytes (0 for aliases and arena)
};

/// Everything one node's execution touches that must not be shared between
/// concurrently running nodes: its simulated clock/GPU and its private Rng.
/// The Rng is seeded from (run seed, node name) so synthetic data is
/// identical no matter which dispatch mode or host interleaving ran the node.
struct NodeCtx {
  sim::SimClock clock;
  sim::GpuSimulator gpu;
  Rng rng;
  std::string schedule;  // conv ScheduleConfig str, captured on traced runs
  NodeCtx(const sim::DeviceSpec& dev, uint64_t seed)
      : gpu(dev, clock), rng(seed) {}
};

/// The simulated cost and trace of one node, merged after dispatch. The
/// host_* fields are only filled on traced runs: they are written by the
/// thread that executed the node (into its private NodeRun slot) and read in
/// the single-threaded post-run merge.
struct NodeRun {
  double ms = 0.0;
  std::vector<sim::ClockEvent> events;
  double host_start_us = 0.0;  // wall clock relative to the run epoch
  double host_end_us = 0.0;
  uint64_t host_thread = 0;    // hashed std::thread::id
  std::string schedule;        // chosen conv ScheduleConfig (traced runs)
};

/// Synthetic detection-head tensors for shapes-only execution. Scores follow
/// an edge-realistic distribution: the background class dominates almost
/// every anchor, with a small fraction of genuine detections, so NMS does a
/// production-like amount of work (a few hundred to ~1k candidates).
///
/// The head layout is (B, A*C, H, W): channel ch belongs to class ch % C,
/// class 0 = background.
Tensor synthesize_ssd_cls(const Shape& shape, int64_t num_classes, Rng& rng) {
  Tensor t(shape, DType::kFloat32);
  const int64_t b = shape[0];
  const int64_t channels = shape[1];
  const int64_t hw = shape.numel() / (b * channels);
  float* p = t.data_f32();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ch = 0; ch < channels; ++ch) {
      const int64_t cls = ch % num_classes;
      for (int64_t i = 0; i < hw; ++i) {
        float v;
        if (cls == 0) {
          v = 6.0f;  // strong background logit
        } else if (rng.next_double() < 0.002) {
          v = rng.next_float(2.0f, 7.0f);  // a genuine detection
        } else {
          v = rng.next_float(-6.0f, -2.0f);
        }
        p[(bi * channels + ch) * hw + i] = v;
      }
    }
  }
  return t;
}

Tensor synthesize_yolo_head(const Shape& shape, Rng& rng) {
  // Objectness logits mostly strongly negative; decode sees ~1% positives.
  Tensor t(shape, DType::kFloat32);
  for (float& v : t.span_f32()) {
    v = rng.next_double() < 0.01 ? rng.next_float(0.0f, 2.0f)
                                 : rng.next_float(-8.0f, -4.0f);
  }
  return t;
}

Tensor synthesize_nms_input(const Shape& shape, Rng& rng) {
  Tensor t = Tensor::full(shape, -1.0f);
  const int64_t n = shape[0] * shape[1];
  float* p = t.data_f32();
  for (int64_t i = 0; i < n; ++i) {
    if (rng.next_double() >= 0.02) continue;
    const float x1 = rng.next_float(0.0f, 0.8f);
    const float y1 = rng.next_float(0.0f, 0.8f);
    p[i * 6 + 0] = static_cast<float>(rng.next_int(0, 19));
    p[i * 6 + 1] = rng.next_float(0.05f, 1.0f);
    p[i * 6 + 2] = x1;
    p[i * 6 + 3] = y1;
    p[i * 6 + 4] = x1 + rng.next_float(0.02f, 0.2f);
    p[i * 6 + 5] = y1 + rng.next_float(0.02f, 0.2f);
  }
  return t;
}

/// Per-worker reusable buffers for JIT dispatch: the kernel-argument array
/// and the zero-padded conv input. Thread-local so steady-state serving
/// performs no per-dispatch heap allocation — the vectors grow to the
/// largest node once and are reused by every later launch on that thread.
struct WorkerScratch {
  std::vector<float*> args;
  std::vector<float> padded;
};

WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return scratch;
}

/// Zero-pads NCHW `src` (n, c, h, w) into `dst` shaped (n, c, h+2ph, w+2pw).
/// The pad frame is zeroed so the JIT conv's out-of-bounds taps read
/// +0.0f (bit-transparent to the reference's skip-OOB accumulation).
void zero_pad_nchw(const float* src, float* dst, int64_t n, int64_t c,
                   int64_t h, int64_t w, int64_t ph, int64_t pw) {
  const int64_t hp = h + 2 * ph;
  const int64_t wp = w + 2 * pw;
  std::memset(dst, 0, static_cast<size_t>(n * c * hp * wp) * sizeof(float));
  for (int64_t plane = 0; plane < n * c; ++plane) {
    const float* s = src + plane * h * w;
    float* d = dst + plane * hp * wp + ph * wp + pw;
    for (int64_t y = 0; y < h; ++y) {
      std::memcpy(d + y * wp, s + y * w, static_cast<size_t>(w) * sizeof(float));
    }
  }
}

/// FNV-1a over the node's stable name (node ids are renumbered by passes;
/// names survive them, so differently-placed or differently-optimized builds
/// of one model synthesize identical per-node data).
uint64_t hash_name(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

class ExecutorImpl {
 public:
  ExecutorImpl(const Graph& g, const sim::Platform& platform,
               const ExecOptions& opts, Rng& input_rng)
      : g_(g), platform_(platform), opts_(opts), input_rng_(input_rng) {}

  ExecResult run() {
    g_.validate();
    validate_options();
    if (opts_.trace != nullptr) run_epoch_ = std::chrono::steady_clock::now();
    const size_t n_nodes = static_cast<size_t>(g_.num_nodes());
    values_.resize(n_nodes);
    layout_block_.assign(n_nodes, 1);
    node_runs_.resize(n_nodes);
    compute_liveness();
    base_seed_ = input_rng_.next_u64();

    if (opts_.use_arena) setup_arena();

    // Reference counts for eager buffer release (the runtime analogue of the
    // memory planner): a node's tensor is dropped after its last consumer.
    pending_.assign(n_nodes, 0);
    for (const Node& n : g_.nodes()) {
      if (!live(n.id)) continue;
      for (int in : n.inputs) ++pending_[static_cast<size_t>(in)];
    }

    try {
      // A nested execute() from a scheduler worker (a model run inside a
      // node task) must not block on its own pool: degrade to sequential
      // dispatch. Simulated timing is unaffected — it is derived from the
      // per-node charges, not from how the host interleaved them.
      if (opts_.mode == ExecMode::kWavefront &&
          !ThreadPool::scheduler().on_worker_thread()) {
        run_wavefront();
      } else {
        run_sequential();
      }
    } catch (...) {
      release_all_arena();
      throw;
    }
    return finalize();
  }

 private:
  bool live(int id) const { return live_[static_cast<size_t>(id)]; }

  /// Arena invariants, checked up front so misuse fails with a clear
  /// igc::Error instead of a deep assertion: use_arena takes the
  /// caller-provided (arena, plan) pair together or not at all, and a
  /// provided plan must have been computed from this graph.
  void validate_options() const {
    if (!opts_.use_arena) return;
    IGC_CHECK(!(opts_.arena != nullptr && opts_.plan == nullptr))
        << "ExecOptions: use_arena with an arena but no plan — pass the "
           "MemoryPlan the arena was sized from (or neither, for a private "
           "per-run arena)";
    IGC_CHECK(!(opts_.arena == nullptr && opts_.plan != nullptr))
        << "ExecOptions: use_arena with a plan but no arena — pass the "
           "BufferArena sized from the plan (or neither, for a private "
           "per-run arena)";
    if (opts_.plan != nullptr) {
      IGC_CHECK_EQ(static_cast<int>(opts_.plan->buffer_of_node.size()),
                   g_.num_nodes())
          << "ExecOptions: the provided MemoryPlan was computed for a "
             "different graph (node count mismatch)";
      IGC_CHECK_EQ(opts_.arena->num_buffers(),
                   static_cast<int>(opts_.plan->buffer_bytes.size()))
          << "ExecOptions: the provided BufferArena was not sized from the "
             "provided MemoryPlan (buffer count mismatch)";
    }
  }

  // Compacted graphs (the default pipeline) are fully live; the mask only
  // filters dead markers when a custom pipeline skipped compaction.
  void compute_liveness() { live_ = g_.live_mask(); }

  void setup_arena() {
    if (opts_.arena != nullptr) {
      IGC_CHECK(opts_.plan != nullptr)
          << "a caller-provided arena needs the plan it was sized from";
      plan_ = opts_.plan;
      arena_ = opts_.arena;
    } else {
      local_plan_ = plan_memory(g_);
      plan_ = &*local_plan_;
      local_arena_.emplace(local_plan_->buffer_bytes);
      arena_ = &*local_arena_;
    }
    IGC_CHECK_EQ(static_cast<int>(plan_->buffer_of_node.size()), g_.num_nodes())
        << "memory plan does not match this graph";
    IGC_CHECK_EQ(arena_->num_buffers(),
                 static_cast<int>(plan_->buffer_bytes.size()));
    IGC_CHECK_EQ(arena_->in_use_bytes(), 0)
        << "arena still holds buffers from a previous run";
    arena_->reset_peak();
  }

  // ----- dispatch ---------------------------------------------------------

  void run_sequential() {
    for (const Node& n : g_.nodes()) {
      if (!live(n.id)) continue;
      node_runs_[static_cast<size_t>(n.id)] = exec_one(n);
      on_node_done(n);
    }
  }

  void run_wavefront() {
    const size_t n_nodes = static_cast<size_t>(g_.num_nodes());
    // Dependency edges: data inputs, plus anti-dependency edges when buffers
    // are recycled — the next holder of a planned buffer must not start
    // before the previous holder and all of its readers have finished.
    std::vector<std::set<int>> deps(n_nodes);
    for (const Node& n : g_.nodes()) {
      if (!live(n.id)) continue;
      for (int in : n.inputs) deps[static_cast<size_t>(n.id)].insert(in);
    }
    if (arena_ != nullptr) add_anti_deps(deps);

    std::vector<int> indeg(n_nodes, 0);
    std::vector<std::vector<int>> succ(n_nodes);
    std::vector<int> roots;
    for (const Node& n : g_.nodes()) {
      if (!live(n.id)) continue;
      indeg[static_cast<size_t>(n.id)] =
          static_cast<int>(deps[static_cast<size_t>(n.id)].size());
      if (deps[static_cast<size_t>(n.id)].empty()) roots.push_back(n.id);
      for (int d : deps[static_cast<size_t>(n.id)]) {
        succ[static_cast<size_t>(d)].push_back(n.id);
      }
    }

    TaskGroup group(ThreadPool::scheduler());
    // Ready-queue depth: tasks spawned (dependencies resolved) but not yet
    // finished. The peak is a host-scheduling observable, not part of the
    // deterministic time model, so it lives in the metrics registry only.
    std::atomic<int> ready_depth{0};
    std::atomic<int> ready_peak{0};
    auto note_spawn = [&] {
      const int d = ready_depth.fetch_add(1, std::memory_order_relaxed) + 1;
      int peak = ready_peak.load(std::memory_order_relaxed);
      while (d > peak && !ready_peak.compare_exchange_weak(
                             peak, d, std::memory_order_relaxed)) {
      }
    };
    // Spawns are only issued while holding sched_mu_ (or before any task
    // runs), and group.wait() joins every task before the locals above go out
    // of scope, so the reference captures below are safe.
    std::function<void(int)> spawn = [&](int id) {
      note_spawn();
      group.run([this, &group, &succ, &indeg, &spawn, &ready_depth, id] {
        const Node& n = g_.node(id);
        NodeRun r = exec_one(n);
        std::lock_guard<std::mutex> lock(sched_mu_);
        node_runs_[static_cast<size_t>(id)] = std::move(r);
        on_node_done(n);
        ready_depth.fetch_sub(1, std::memory_order_relaxed);
        if (group.failed()) return;  // stop fanning out after an error
        for (int s : succ[static_cast<size_t>(id)]) {
          if (--indeg[static_cast<size_t>(s)] == 0) spawn(s);
        }
      });
    };
    // Roots were snapshotted before anything ran: re-reading indeg here
    // would race with finishing tasks and could spawn a node twice.
    for (int id : roots) spawn(id);
    group.wait();
    const int peak = ready_peak.load(std::memory_order_relaxed);
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge("exec.ready_queue_peak").update_max(peak);
  }

  /// Anti-dependency edges derived from the memory plan. The planner assigns
  /// buffers walking nodes in id order and recycles a buffer only after the
  /// previous holder's last consumer, so every edge points to a higher id
  /// and the graph stays acyclic.
  void add_anti_deps(std::vector<std::set<int>>& deps) const {
    std::vector<std::vector<int>> consumers(
        static_cast<size_t>(g_.num_nodes()));
    std::map<int, std::vector<int>> holders;  // buffer id -> node ids, ordered
    for (const Node& n : g_.nodes()) {
      if (!live(n.id)) continue;
      for (int in : n.inputs) consumers[static_cast<size_t>(in)].push_back(n.id);
      const int buf = plan_->buffer_of_node[static_cast<size_t>(n.id)];
      IGC_CHECK_GE(buf, 0) << "live node " << n.name << " has no planned buffer";
      holders[buf].push_back(n.id);
    }
    for (const auto& [buf, hs] : holders) {
      for (size_t i = 0; i + 1 < hs.size(); ++i) {
        const int prev = hs[i];
        const int next = hs[i + 1];
        deps[static_cast<size_t>(next)].insert(prev);
        for (int c : consumers[static_cast<size_t>(prev)]) {
          IGC_CHECK_LT(c, next) << "memory plan reuses buffer " << buf
                                << " before its last consumer";
          deps[static_cast<size_t>(next)].insert(c);
        }
      }
    }
  }

  NodeRun exec_one(const Node& n) {
    const bool traced = opts_.trace != nullptr;
    NodeRun r;
    if (traced) {
      r.host_start_us = host_us_since_epoch();
      r.host_thread =
          std::hash<std::thread::id>{}(std::this_thread::get_id());
    }
    NodeCtx cx(platform_.gpu, base_seed_ ^ hash_name(n.name));
    cx.clock.set_tags(lane_of(n), categorize(n.kind, n.place));
    exec_node(cx, n);
    r.ms = cx.clock.total_ms();
    r.events = cx.clock.events();
    if (traced) {
      r.schedule = std::move(cx.schedule);
      r.host_end_us = host_us_since_epoch();
    }
    return r;
  }

  double host_us_since_epoch() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - run_epoch_)
        .count();
  }

  /// Post-execution bookkeeping for one node: peak-memory accounting and
  /// eager release of inputs whose last consumer just ran. Called inline in
  /// sequential dispatch and under sched_mu_ in wavefront dispatch; releases
  /// happen before successors are spawned, which is what makes the
  /// anti-dependency edges sufficient for safe concurrent buffer reuse.
  void on_node_done(const Node& n) {
    heap_in_use_ += val(n.id).heap_bytes;
    const int64_t arena_now = arena_ != nullptr ? arena_->in_use_bytes() : 0;
    peak_bytes_ = std::max(peak_bytes_, heap_in_use_ + arena_now);
    for (int in : n.inputs) {
      if (--pending_[static_cast<size_t>(in)] == 0 && in != g_.output()) {
        release_value(in);
      }
    }
  }

  void release_value(int id) {
    Value& v = val(id);
    v.tensor = Tensor();
    heap_in_use_ -= v.heap_bytes;
    v.heap_bytes = 0;
    if (v.arena_buffer >= 0) {
      arena_->release(v.arena_buffer);
      v.arena_buffer = -1;
    }
  }

  void release_all_arena() {
    if (arena_ == nullptr) return;
    for (Value& v : values_) {
      if (v.arena_buffer < 0) continue;
      v.tensor = Tensor();
      arena_->release(v.arena_buffer);
      v.arena_buffer = -1;
    }
  }

  ExecResult finalize() {
    ExecResult result;
    // Simulated time, merged deterministically from the per-node charges in
    // topological id order: the serial sum models the sequential executor's
    // single in-order queue; the lane schedule models the wavefront executor
    // (per-device engines running independent nodes concurrently). Trace
    // spans are recorded here, from the same deterministic merge — never
    // from concurrently running node tasks.
    double serial = 0.0;
    sim::LaneSchedule lanes;
    size_t total_events = 0;
    for (const NodeRun& r : node_runs_) total_events += r.events.size();
    result.events.reserve(total_events);
    std::vector<double> finish(static_cast<size_t>(g_.num_nodes()), 0.0);
    for (const Node& n : g_.nodes()) {
      if (!live(n.id)) continue;
      const NodeRun& r = node_runs_[static_cast<size_t>(n.id)];
      serial += r.ms;
      attribute(n, r.ms, result);
      double ready = 0.0;
      for (int in : n.inputs) {
        ready = std::max(ready, finish[static_cast<size_t>(in)]);
      }
      const double end = lanes.schedule(lane_of(n), ready, r.ms);
      finish[static_cast<size_t>(n.id)] = end;
      if (opts_.trace != nullptr) record_span(n, r, end);
      for (const sim::ClockEvent& e : r.events) {
        result.counters.merge(e.counters);
      }
      result.events.insert(result.events.end(), r.events.begin(),
                           r.events.end());
    }
    result.serial_ms = serial;
    record_metrics(result);
    result.critical_path_ms = finish[static_cast<size_t>(g_.output())];
    result.latency_ms = opts_.mode == ExecMode::kWavefront
                            ? result.critical_path_ms
                            : result.serial_ms;

    Value& out = val(g_.output());
    // An arena-backed output must escape the run by copy: its slab is
    // recycled by the next run over the same arena.
    result.output = out.arena_buffer >= 0 ? out.tensor.clone() : out.tensor;
    release_all_arena();
    result.peak_intermediate_bytes = peak_bytes_;
    if (arena_ != nullptr) {
      result.peak_intermediate_bytes =
          std::max(peak_bytes_, arena_->peak_in_use_bytes());
      result.arena_bytes = arena_->capacity_bytes();
      result.arena_page_bytes = arena_->page_bytes_held();
    }
    return result;
  }

  /// One trace span for node `n`: the simulated lane window ending at `end`
  /// plus everything captured while the node ran.
  void record_span(const Node& n, const NodeRun& r, double end) {
    obs::TraceSpan s;
    s.name = n.name;
    s.op = std::string(op_kind_name(n.kind));
    s.category = categorize(n.kind, n.place);
    s.lane = lane_of(n);
    s.sim_start_ms = end - r.ms;
    s.sim_end_ms = end;
    s.host_start_us = r.host_start_us;
    s.host_end_us = r.host_end_us;
    s.host_thread = r.host_thread;
    s.shape = n.out_shape.str();
    s.layout_block = layout_block_[static_cast<size_t>(n.id)];
    for (const sim::ClockEvent& e : r.events) {
      s.bytes += e.bytes;
      s.counters.merge(e.counters);
    }
    s.schedule = r.schedule;
    opts_.trace->record(std::move(s));
  }

  /// Batch-updates the process-wide registry from the merged run. Instrument
  /// references are resolved once per process; everything recorded here is a
  /// deterministic function of the graph and options, so repeated identical
  /// runs produce identical metric deltas.
  void record_metrics(const ExecResult& result) {
    auto& m = obs::MetricsRegistry::global();
    static auto& runs = m.counter("exec.runs");
    static auto& nodes = m.counter("exec.nodes");
    static auto& kernels = m.counter("exec.kernels_launched");
    static auto& fallbacks = m.counter("exec.fallback_ops");
    static auto& copies = m.counter("exec.copies");
    static auto& copy_bytes = m.counter("exec.copy_bytes");
    static auto& node_ms = m.histogram("exec.node_ms");
    static auto& sim_launches = m.counter("sim.launches");
    static auto& sim_flops = m.counter("sim.flops");
    static auto& sim_dram = m.counter("sim.dram_bytes");
    static auto& sim_compute_bound = m.counter("sim.compute_bound_launches");
    static auto& sim_bandwidth_bound =
        m.counter("sim.bandwidth_bound_launches");
    static auto& sim_latency_bound = m.counter("sim.latency_bound_launches");
    static auto& sim_occ_pct = m.histogram("sim.launch_occupancy_pct");
    runs.add(1);
    for (const Node& n : g_.nodes()) {
      if (!live(n.id)) continue;
      nodes.add(1);
      if (categorize(n.kind, n.place) == sim::OpCategory::kFallback) {
        fallbacks.add(1);
      }
      const double run_ms = node_runs_[static_cast<size_t>(n.id)].ms;
      node_ms.observe(run_ms);
    }
    for (const sim::ClockEvent& e : result.events) {
      if (e.lane == sim::Lane::kGpu) kernels.add(1);
      if (e.category == sim::OpCategory::kCopy) {
        copies.add(1);
        copy_bytes.add(e.bytes);
      }
      if (e.counters.launches > 0) {
        sim_launches.add(e.counters.launches);
        sim_flops.add(e.counters.flops);
        sim_dram.add(e.counters.dram_bytes);
        switch (e.counters.bound) {
          case sim::BoundKind::kCompute: sim_compute_bound.add(1); break;
          case sim::BoundKind::kBandwidth: sim_bandwidth_bound.add(1); break;
          case sim::BoundKind::kLatency: sim_latency_bound.add(1); break;
        }
        sim_occ_pct.observe(
            static_cast<int64_t>(e.counters.occupancy * 100.0));
      }
    }
  }

  static sim::Lane lane_of(const Node& n) {
    if (n.kind == OpKind::kDeviceCopy) return sim::Lane::kCopy;
    return n.place == Place::kCpu ? sim::Lane::kCpu : sim::Lane::kGpu;
  }

  static void attribute(const Node& n, double ms, ExecResult& r) {
    switch (categorize(n.kind, n.place)) {
      case sim::OpCategory::kConv:
        r.conv_ms += ms;
        break;
      case sim::OpCategory::kVision:
        r.vision_ms += ms;
        break;
      case sim::OpCategory::kCopy:
        r.copy_ms += ms;
        break;
      case sim::OpCategory::kFallback:
        r.fallback_ms += ms;
        break;
      case sim::OpCategory::kOther:
        r.other_ms += ms;
        break;
    }
  }

  // ----- value storage ----------------------------------------------------

  Value& val(int id) { return values_[static_cast<size_t>(id)]; }

  const Tensor& in_tensor(const Node& n, size_t i = 0) {
    return val(n.inputs[i]).tensor;
  }
  bool in_materialized(const Node& n) {
    for (int in : n.inputs) {
      if (!val(in).materialized) return false;
    }
    return !n.inputs.empty();
  }

  /// Views node `n`'s planned arena buffer as its output tensor.
  Tensor arena_acquire(const Node& n, const Shape& shape, DType dtype,
                       bool zero_fill) {
    const int buf = plan_->buffer_of_node[static_cast<size_t>(n.id)];
    IGC_CHECK_GE(buf, 0) << "live node " << n.name << " has no planned buffer";
    val(n.id).arena_buffer = buf;
    return arena_->acquire(buf, shape, dtype, zero_fill);
  }

  /// Stores a shape-only placeholder output. Placeholder contents are never
  /// read by any operator, so arena slabs stay uninitialized — except for
  /// the graph output, which escapes to the caller and must match the
  /// non-arena executor's zeros bit for bit.
  void set_placeholder(const Node& n) {
    Value& v = val(n.id);
    if (arena_ != nullptr) {
      v.tensor = arena_acquire(n, n.out_shape, DType::kFloat32,
                               /*zero_fill=*/n.id == g_.output());
    } else {
      v.tensor = Tensor::zeros(n.out_shape);
      v.heap_bytes = v.tensor.nbytes();
    }
    v.materialized = false;
  }

  /// Stores a computed output, copying it into the node's planned arena
  /// buffer when one is in use so the result's lifetime is plan-managed.
  void set_computed(const Node& n, Tensor t) {
    Value& v = val(n.id);
    if (arena_ != nullptr) {
      Tensor dst = arena_acquire(n, t.shape(), t.dtype(), /*zero_fill=*/false);
      std::memcpy(dst.raw_data(), t.raw_data(),
                  static_cast<size_t>(t.nbytes()));
      v.tensor = std::move(dst);
    } else {
      v.heap_bytes = t.nbytes();
      v.tensor = std::move(t);
    }
    v.materialized = true;
  }

  /// Flatten and DeviceCopy alias their input when values live on the heap.
  /// Under the arena they alias too — acquire_shared() refcounts the source
  /// buffer's pages, and a later acquirer of those pages sees the outstanding
  /// reference and takes fresh ones (copy-on-reacquire), so the alias stays
  /// valid even after the source buffer is recycled.
  void set_aliased(const Node& n) {
    Value& v = val(n.id);
    const Value& src = val(n.inputs[0]);
    if (arena_ != nullptr) {
      const int buf = plan_->buffer_of_node[static_cast<size_t>(n.id)];
      IGC_CHECK_GE(buf, 0) << "live node " << n.name
                           << " has no planned buffer";
      if (src.materialized && src.arena_buffer >= 0) {
        v.tensor = arena_->acquire_shared(buf, src.arena_buffer, n.out_shape,
                                          src.tensor.dtype());
        v.arena_buffer = buf;
      } else {
        // Unmaterialized placeholders carry no data worth sharing; zero-fill
        // only when the value escapes as the graph output (matching the
        // sequential executor, whose alias of a zeroed placeholder is zeros).
        const bool zero = !src.materialized && n.id == g_.output();
        v.tensor = arena_acquire(n, n.out_shape, src.tensor.dtype(), zero);
      }
    } else {
      v.tensor = src.tensor.reshape(n.out_shape);
    }
    v.materialized = src.materialized;
  }

  // ----- per-op execution -------------------------------------------------

  /// Charges one elementwise GPU kernel (or the CPU equivalent).
  void charge_elementwise(NodeCtx& cx, const Node& n, int64_t numel,
                          int inputs_per_elem, int64_t flops_per_elem) {
    if (n.place == Place::kCpu) {
      cx.clock.charge_cpu(platform_.cpu, numel * flops_per_elem,
                          4 * numel * (inputs_per_elem + 1), 0.9, n.name);
    } else {
      cx.clock.charge(platform_.gpu,
                      ops::elementwise_kernel_cost(n.name, numel,
                                                   inputs_per_elem,
                                                   flops_per_elem));
    }
  }

  /// Charges a layout transform on an edge whose producer layout block
  /// differs from what this node requires.
  void charge_layout_edges(NodeCtx& cx, const Node& n, int required_block) {
    for (int in : n.inputs) {
      const int have = layout_block_[static_cast<size_t>(in)];
      if (have == required_block) continue;
      const int64_t numel = g_.node(in).out_shape.numel();
      sim::KernelLaunch k;
      k.name = "layout_transform_" + g_.node(in).name;
      k.flops = numel;
      k.dram_read_bytes = 4 * numel;
      k.dram_write_bytes = 4 * numel;
      k.work_items = numel;
      k.work_group_size = 64;
      k.compute_efficiency = 0.6;
      // A layout transform is a GPU kernel whoever consumes its output:
      // charge it on the GPU lane explicitly so transforms feeding a
      // CPU-placed node don't book as CPU-lane time.
      cx.clock.charge_on(sim::Lane::kGpu, platform_.gpu, k);
    }
  }

  /// Layout a node's output carries forward.
  int propagate_layout(const Node& n, int own_block) {
    switch (n.kind) {
      case OpKind::kConv2d:
        return own_block;
      case OpKind::kActivation:
      case OpKind::kScaleShift:
      case OpKind::kAdd:
      case OpKind::kPool2d:
      case OpKind::kUpsample2x:
      case OpKind::kDeviceCopy:
        return n.inputs.empty()
                   ? 1
                   : layout_block_[static_cast<size_t>(n.inputs[0])];
      default:
        return 1;  // everything else requires/produces plain layout
    }
  }

  void exec_node(NodeCtx& cx, const Node& n) {
    switch (n.kind) {
      case OpKind::kInput: {
        Value& v = val(n.id);
        if (arena_ != nullptr) {
          Tensor t = arena_acquire(n, n.out_shape, DType::kFloat32,
                                   /*zero_fill=*/false);
          for (float& x : t.span_f32()) x = cx.rng.next_float(0.0f, 1.0f);
          v.tensor = std::move(t);
        } else {
          v.tensor =
              Tensor::random_uniform(n.out_shape, cx.rng, 0.0f, 1.0f);
          v.heap_bytes = v.tensor.nbytes();
        }
        v.materialized = true;
        layout_block_[static_cast<size_t>(n.id)] = 1;
        return;
      }
      case OpKind::kConstant: {
        // Pre-computed at compile time and resident like a weight in unified
        // memory: charges no kernel and no clock time. Outside the arena the
        // value aliases the graph's tensor (heap_bytes stays 0 — it is not a
        // per-run allocation); with an arena it copies into the planned slab
        // so downstream buffer reuse stays plan-managed.
        Value& v = val(n.id);
        if (arena_ != nullptr) {
          Tensor t = arena_acquire(n, n.out_shape, n.weight.dtype(),
                                   /*zero_fill=*/false);
          std::memcpy(t.raw_data(), n.weight.raw_data(),
                      static_cast<size_t>(n.weight.nbytes()));
          v.tensor = std::move(t);
        } else {
          v.tensor = n.weight;
        }
        v.materialized = true;
        layout_block_[static_cast<size_t>(n.id)] = 1;
        return;
      }
      case OpKind::kConv2d:
        exec_conv(cx, n);
        return;
      case OpKind::kConv2dTranspose: {
        charge_layout_edges(cx, n, 1);
        if (n.place == Place::kCpu) {
          cx.clock.charge_cpu(platform_.cpu, n.deconv.flops(),
                              n.weight.nbytes(), 0.9, n.name);
        } else {
          cx.clock.charge(platform_.gpu,
                          ops::conv2d_transpose_kernel_cost(n.deconv,
                                                            platform_.gpu));
        }
        finish_heavy(n, [&] {
          Tensor t = ops::conv2d_transpose_reference(
              in_tensor(n), n.weight, n.bias.defined() ? &n.bias : nullptr,
              n.deconv);
          if (n.fused_activation) {
            t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
          }
          return t;
        });
        return;
      }
      case OpKind::kScaleShift: {
        charge_elementwise(cx, n, n.out_shape.numel(), 1, 2);
        finish_elementwise(n, [&] {
          Tensor t = ops::scale_shift_reference(in_tensor(n), n.scale, n.shift);
          return t;
        });
        return;
      }
      case OpKind::kActivation: {
        charge_elementwise(cx, n, n.out_shape.numel(), 1, 2);
        finish_elementwise(n, [&] {
          return ops::activation_reference(in_tensor(n), n.act, n.act_alpha);
        });
        return;
      }
      case OpKind::kAdd: {
        charge_elementwise(cx, n, n.out_shape.numel(), 2, 1);
        finish_elementwise(n, [&] {
          Tensor t = ops::add_reference(in_tensor(n, 0), in_tensor(n, 1));
          if (n.fused_activation) {
            t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
          }
          return t;
        });
        return;
      }
      case OpKind::kConcat: {
        charge_elementwise(cx, n, n.out_shape.numel(), 1, 0);
        finish_elementwise(n, [&] {
          std::vector<Tensor> ins;
          for (int in : n.inputs) ins.push_back(val(in).tensor);
          return ops::concat_channels_reference(ins);
        });
        return;
      }
      case OpKind::kPool2d: {
        const Shape& s = g_.node(n.inputs[0]).out_shape;
        if (n.place == Place::kCpu) {
          charge_elementwise(cx, n, n.out_shape.numel(), 1,
                             n.pool.kernel * n.pool.kernel);
        } else {
          cx.clock.charge(platform_.gpu, ops::pool2d_kernel_cost(s, n.pool));
        }
        finish_elementwise(
            n, [&] { return ops::pool2d_reference(in_tensor(n), n.pool); });
        return;
      }
      case OpKind::kGlobalAvgPool: {
        charge_elementwise(cx, n, g_.node(n.inputs[0]).out_shape.numel(), 1, 1);
        finish_elementwise(
            n, [&] { return ops::global_avg_pool_reference(in_tensor(n)); });
        return;
      }
      case OpKind::kDense: {
        charge_layout_edges(cx, n, 1);
        if (n.place == Place::kCpu) {
          cx.clock.charge_cpu(platform_.cpu, n.dense.flops(),
                              n.weight.nbytes(), 0.9, n.name);
        } else {
          cx.clock.charge(platform_.gpu,
                          ops::dense_kernel_cost(n.dense, platform_.gpu));
        }
        finish_heavy(n, [&] {
          Tensor t = ops::dense_reference(in_tensor(n), n.weight,
                                          n.bias.defined() ? &n.bias : nullptr,
                                          n.dense);
          if (n.fused_activation) {
            t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
          }
          return t;
        });
        return;
      }
      case OpKind::kFlatten: {
        charge_layout_edges(cx, n, 1);
        set_aliased(n);  // a view on the heap; a copy under the arena
        layout_block_[static_cast<size_t>(n.id)] = 1;
        return;
      }
      case OpKind::kSoftmax: {
        charge_layout_edges(cx, n, 1);
        charge_elementwise(cx, n, n.out_shape.numel(), 1, 4);
        finish_elementwise(
            n, [&] { return ops::softmax_reference(in_tensor(n)); });
        return;
      }
      case OpKind::kUpsample2x: {
        charge_elementwise(cx, n, n.out_shape.numel(), 1, 0);
        finish_elementwise(
            n, [&] { return ops::upsample2x_reference(in_tensor(n)); });
        return;
      }
      case OpKind::kDeviceCopy: {
        const int64_t bytes = n.out_shape.numel() * 4;
        cx.clock.charge_copy(platform_.gpu, bytes, n.name);
        set_aliased(n);
        layout_block_[static_cast<size_t>(n.id)] =
            layout_block_[static_cast<size_t>(n.inputs[0])];
        return;
      }
      case OpKind::kMultiboxDetection:
        exec_multibox(cx, n);
        return;
      case OpKind::kSsdDetection:
        exec_ssd_detection(cx, n);
        return;
      case OpKind::kYoloDecode: {
        charge_layout_edges(cx, n, 1);
        Tensor head = val(n.inputs[0]).materialized
                          ? in_tensor(n)
                          : synthesize_yolo_head(g_.node(n.inputs[0]).out_shape,
                                                 cx.rng);
        Tensor out;
        if (n.place == Place::kCpu) {
          out = ops::yolo_decode_reference(head, n.yolo);
          cx.clock.charge_cpu(platform_.cpu, head.numel() * 8, head.nbytes(),
                              0.9, n.name);
        } else {
          out = ops::yolo_decode_gpu(cx.gpu, head, n.yolo);
        }
        set_computed(n, std::move(out));
        return;
      }
      case OpKind::kDetectionConcat: {
        charge_elementwise(cx, n, n.out_shape.numel(), 1, 0);
        Tensor out = arena_ != nullptr
                         ? arena_acquire(n, n.out_shape, DType::kFloat32,
                                         /*zero_fill=*/false)
                         : Tensor(n.out_shape, DType::kFloat32);
        int64_t off = 0;
        const int64_t bsz = n.out_shape[0];
        const int64_t total = n.out_shape[1];
        for (int in : n.inputs) {
          const Tensor& t =
              val(in).materialized
                  ? val(in).tensor
                  : synthesize_nms_input(g_.node(in).out_shape, cx.rng);
          const int64_t ni = t.shape()[1];
          for (int64_t b = 0; b < bsz; ++b) {
            std::copy(t.data_f32() + b * ni * 6, t.data_f32() + (b + 1) * ni * 6,
                      out.data_f32() + (b * total + off) * 6);
          }
          off += ni;
        }
        Value& v = val(n.id);
        if (arena_ == nullptr) v.heap_bytes = out.nbytes();
        v.tensor = std::move(out);
        v.materialized = true;
        return;
      }
      case OpKind::kBoxNms:
        exec_box_nms(cx, n);
        return;
      case OpKind::kRoiAlign: {
        charge_layout_edges(cx, n, 1);
        const bool have = in_materialized(n);
        Tensor feats = have ? in_tensor(n, 0)
                            : Tensor::zeros(g_.node(n.inputs[0]).out_shape);
        Tensor rois = in_tensor(n, 1);
        if (!val(n.inputs[1]).materialized) {
          // Synthesize plausible proposals inside the feature map.
          const Shape& fs = g_.node(n.inputs[0]).out_shape;
          rois = Tensor(g_.node(n.inputs[1]).out_shape, DType::kFloat32);
          for (int64_t r = 0; r < rois.shape()[0]; ++r) {
            float* row = rois.data_f32() + r * 5;
            row[0] = static_cast<float>(cx.rng.next_int(0, fs[0] - 1));
            const float x1 =
                cx.rng.next_float(0.0f, static_cast<float>(fs[3]) * 0.6f);
            const float y1 =
                cx.rng.next_float(0.0f, static_cast<float>(fs[2]) * 0.6f);
            row[1] = x1;
            row[2] = y1;
            row[3] = x1 + cx.rng.next_float(2.0f, static_cast<float>(fs[3]) * 0.4f);
            row[4] = y1 + cx.rng.next_float(2.0f, static_cast<float>(fs[2]) * 0.4f);
          }
        }
        Tensor out;
        if (n.place == Place::kCpu) {
          out = ops::roi_align_reference(feats, rois, n.roi);
          cx.clock.charge_cpu(platform_.cpu, n.out_shape.numel() * 40,
                              feats.nbytes(), 0.9, n.name);
        } else {
          out = ops::roi_align_gpu(cx.gpu, feats, rois, n.roi);
        }
        set_computed(n, std::move(out));
        return;
      }
    }
    IGC_CHECK(false) << "unhandled op " << op_kind_name(n.kind);
  }

  /// Computes node `n` through its compiled host kernel when the run carries
  /// a dispatch table covering it. Writes straight into the node's output
  /// buffer (arena slab or fresh heap tensor — no set_computed copy) and
  /// splits the kernel's flattened grid over the data-parallel pool; disjoint
  /// blocks write disjoint outputs, so the partition is race-free and the
  /// result is bit-identical to the reference path regardless of chunking.
  /// Returns false when the node is not covered (caller runs the reference).
  bool try_jit(const Node& n) {
    if (opts_.jit == nullptr) return false;
    const codegen::jit::NodeKernel* k = opts_.jit->find(n.id);
    if (k == nullptr) return false;
    static auto& dispatches =
        obs::MetricsRegistry::global().counter("jit.dispatches");

    Tensor out = arena_ != nullptr
                     ? arena_acquire(n, n.out_shape, DType::kFloat32,
                                     /*zero_fill=*/false)
                     : Tensor(n.out_shape, DType::kFloat32);
    WorkerScratch& scratch = worker_scratch();
    scratch.args.clear();
    for (codegen::jit::ArgKind kind : k->args) {
      scratch.args.push_back(bind_arg(kind, n, *k, out, scratch));
    }

    ThreadPool& pool = ThreadPool::global();
    const int64_t grid = k->grid;
    const int64_t chunks =
        std::min<int64_t>(grid, std::max(1, 4 * pool.num_threads()));
    float* const* args = scratch.args.data();
    codegen::jit::KernelFn fn = k->fn;
    if (chunks <= 1 || pool.on_worker_thread()) {
      fn(args, 0, grid);
    } else {
      pool.parallel_for(chunks, [args, fn, grid, chunks](int64_t c) {
        fn(args, grid * c / chunks, grid * (c + 1) / chunks);
      });
    }
    dispatches.add(1);

    Value& v = val(n.id);
    if (arena_ == nullptr) v.heap_bytes = out.nbytes();
    v.tensor = std::move(out);
    v.materialized = true;
    return true;
  }

  /// Resolves one kernel-argument slot to a buffer pointer. Inputs are
  /// const_cast through the uniform float** ABI; the emitted kernels declare
  /// them `const float* __restrict__` and never write them.
  float* bind_arg(codegen::jit::ArgKind kind, const Node& n,
                  const codegen::jit::NodeKernel& k, Tensor& out,
                  WorkerScratch& scratch) {
    using codegen::jit::ArgKind;
    auto mut = [](const Tensor& t) {
      return const_cast<float*>(t.data_f32());
    };
    switch (kind) {
      case ArgKind::kInput0:
        return mut(in_tensor(n, 0));
      case ArgKind::kInput1:
        return mut(in_tensor(n, 1));
      case ArgKind::kPaddedInput0: {
        const Tensor& in = in_tensor(n, 0);
        if (k.pad_h == 0 && k.pad_w == 0) return mut(in);
        const Shape& s = in.shape();
        const int64_t need =
            s[0] * s[1] * (s[2] + 2 * k.pad_h) * (s[3] + 2 * k.pad_w);
        if (static_cast<int64_t>(scratch.padded.size()) < need) {
          scratch.padded.resize(static_cast<size_t>(need));
        }
        zero_pad_nchw(in.data_f32(), scratch.padded.data(), s[0], s[1], s[2],
                      s[3], k.pad_h, k.pad_w);
        return scratch.padded.data();
      }
      case ArgKind::kWeight:
        return mut(n.weight);
      case ArgKind::kBias:
        return mut(n.bias);
      case ArgKind::kScale:
        return mut(n.scale);
      case ArgKind::kShift:
        return mut(n.shift);
      case ArgKind::kFusedScale:
        return mut(n.fused_scale);
      case ArgKind::kFusedShift:
        return mut(n.fused_shift);
      case ArgKind::kOutput:
        return out.data_f32();
    }
    IGC_CHECK(false) << "bad ArgKind";
    return nullptr;
  }

  // Elementwise helpers: numerics only when inputs are materialized.
  template <typename Fn>
  void finish_elementwise(const Node& n, Fn&& compute) {
    if (opts_.compute_numerics && in_materialized(n)) {
      if (!try_jit(n)) {
        Tensor t = compute();
        IGC_CHECK(t.shape() == n.out_shape)
            << n.name << ": " << t.shape().str();
        set_computed(n, std::move(t));
      }
    } else {
      set_placeholder(n);
    }
    layout_block_[static_cast<size_t>(n.id)] = propagate_layout(n, 1);
  }

  template <typename Fn>
  void finish_heavy(const Node& n, Fn&& compute) {
    finish_elementwise(n, std::forward<Fn>(compute));
  }

  void exec_conv(NodeCtx& cx, const Node& n) {
    const int block = [&] {
      auto it = opts_.conv_layout_block.find(n.id);
      return it == opts_.conv_layout_block.end() ? 1 : it->second;
    }();
    charge_layout_edges(cx, n, block);
    // Schedule resolution order: the pre-resolved per-node map (no string
    // key building on the hot path), then the tuning database, then the
    // hand-written template (Table 5 Before). All three agree on content —
    // the map is just the lookup hoisted to compile time.
    const tune::ScheduleConfig* pre = nullptr;
    if (opts_.conv_schedules != nullptr) {
      auto it = opts_.conv_schedules->find(n.id);
      if (it != opts_.conv_schedules->end()) pre = &it->second;
    }
    tune::ScheduleConfig looked_up;
    if (pre == nullptr) {
      looked_up =
          opts_.use_tuned_configs
              ? tune::lookup_or_default(n.conv, platform_.gpu, block, opts_.db)
              : [&] {
                  auto c = ops::conv2d_manual_schedule(n.conv, platform_.gpu);
                  c.set("layout_block", block);
                  return c;
                }();
    }
    const tune::ScheduleConfig& cfg = pre != nullptr ? *pre : looked_up;
    if (opts_.trace != nullptr) cx.schedule = cfg.str();
    if (n.place == Place::kCpu) {
      cx.clock.charge_cpu(platform_.cpu, n.conv.flops(), n.conv.min_bytes(),
                          0.9, n.name);
    } else {
      sim::KernelLaunch k = ops::conv2d_kernel_cost(n.conv, cfg, platform_.gpu);
      if (n.fused_scale_shift) k.flops += 2 * n.out_shape.numel();
      if (n.fused_activation) k.flops += n.out_shape.numel();
      cx.clock.charge(platform_.gpu, k);
    }
    if (opts_.compute_numerics && in_materialized(n)) {
      if (!try_jit(n)) {
        Tensor t = ops::conv2d_reference(
            in_tensor(n), n.weight, n.bias.defined() ? &n.bias : nullptr,
            n.conv);
        if (n.fused_scale_shift) {
          t = ops::scale_shift_reference(t, n.fused_scale, n.fused_shift);
        }
        if (n.fused_activation) {
          t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
        }
        set_computed(n, std::move(t));
      }
    } else {
      set_placeholder(n);
    }
    layout_block_[static_cast<size_t>(n.id)] = block;
  }

  /// Shared tail of every multibox path: NMS over the decoded candidates on
  /// the placed device, with the matching cost.
  Tensor run_nms_stage(NodeCtx& cx, const Node& n, const Tensor& decoded,
                       const ops::NmsParams& nms) {
    if (n.place == Place::kCpu) {
      int64_t evals = 0;
      Tensor out = ops::box_nms_reference_counted(decoded, nms, &evals);
      const int64_t count = decoded.shape()[0] * decoded.shape()[1];
      const int64_t sort_flops = static_cast<int64_t>(
          static_cast<double>(count) *
          std::log2(static_cast<double>(count) + 2.0) * 4.0);
      cx.clock.charge_cpu(platform_.cpu, evals * 16 + sort_flops,
                          decoded.nbytes() * 2, 0.3, n.name + "_nms_cpu");
      return out;
    }
    if (opts_.optimized_vision_ops) {
      return ops::box_nms_gpu(cx.gpu, decoded, nms);
    }
    return ops::box_nms_gpu_naive(cx.gpu, decoded, nms);
  }

  void exec_multibox(NodeCtx& cx, const Node& n) {
    charge_layout_edges(cx, n, 1);
    const bool have = in_materialized(n);
    // The (B, C, N) class-probability tensor: dim 1 is the class axis
    // (class 0 = background). Synthesize realistic probabilities directly.
    Tensor cls = in_tensor(n, 0);
    if (!have) {
      const Shape& cs = g_.node(n.inputs[0]).out_shape;
      cls = Tensor(cs, DType::kFloat32);
      const int64_t nc = cs[1];
      const int64_t na = cs[2];
      for (int64_t b = 0; b < cs[0]; ++b) {
        for (int64_t c = 0; c < nc; ++c) {
          for (int64_t i = 0; i < na; ++i) {
            float v = c == 0 ? 0.95f : 0.002f;
            if (c != 0 && cx.rng.next_double() < 0.002) {
              v = cx.rng.next_float(0.2f, 0.9f);
            }
            cls.data_f32()[(b * nc + c) * na + i] = v;
          }
        }
      }
    }
    Tensor loc = have ? in_tensor(n, 1)
                      : Tensor::random_normal(g_.node(n.inputs[1]).out_shape,
                                              cx.rng, 0.3f);
    // Decode stage.
    const Tensor decoded =
        ops::multibox_decode_reference(cls, loc, n.anchors, n.mbox);
    if (n.place == Place::kCpu) {
      cx.clock.charge_cpu(platform_.cpu, cls.numel() * 4,
                          cls.nbytes() + loc.nbytes(), 0.8,
                          n.name + "_decode_cpu");
    } else {
      cx.gpu.launch_elementwise("multibox_decode",
                                cls.shape()[0] * n.anchors.shape()[0],
                                [](int64_t) {}, 2 * cls.shape()[1] + 20,
                                4 * (cls.shape()[1] + 8));
    }
    set_computed(n, run_nms_stage(cx, n, decoded, n.mbox.nms));
  }

  void exec_ssd_detection(NodeCtx& cx, const Node& n) {
    charge_layout_edges(cx, n, 1);
    const int64_t c1 = n.ssd_num_classes;
    const int64_t total = n.out_shape[1];
    const int64_t bsz = n.out_shape[0];

    // Assemble (B, C, N) class probabilities (softmax over classes) and
    // (B, N*4) localization deltas from the per-scale head tensors.
    Tensor cls_prob = Tensor::zeros(Shape{bsz, c1, total});
    Tensor loc_pred = Tensor::zeros(Shape{bsz, total * 4});
    int64_t anchor_off = 0;
    for (size_t h = 0; h + 1 < n.inputs.size(); h += 2) {
      const int cls_id = n.inputs[h];
      const int loc_id = n.inputs[h + 1];
      const Shape& cs = g_.node(cls_id).out_shape;
      const int64_t a = cs[1] / c1;
      const int64_t gh = cs[2];
      const int64_t gw = cs[3];
      const Tensor cls_t = val(cls_id).materialized
                               ? val(cls_id).tensor
                               : synthesize_ssd_cls(cs, c1, cx.rng);
      const Tensor loc_t =
          val(loc_id).materialized
              ? val(loc_id).tensor
              : Tensor::random_normal(g_.node(loc_id).out_shape, cx.rng, 0.3f);
      const float* cp = cls_t.data_f32();
      const float* lp = loc_t.data_f32();
      for (int64_t b = 0; b < bsz; ++b) {
        for (int64_t y = 0; y < gh; ++y) {
          for (int64_t x = 0; x < gw; ++x) {
            for (int64_t ai = 0; ai < a; ++ai) {
              const int64_t anchor = anchor_off + ((y * gw + x) * a + ai);
              // Softmax over the c1 class logits of this anchor.
              float maxv = -1e30f;
              for (int64_t c = 0; c < c1; ++c) {
                maxv = std::max(maxv,
                                cp[((b * a * c1 + ai * c1 + c) * gh + y) * gw + x]);
              }
              double sum = 0.0;
              for (int64_t c = 0; c < c1; ++c) {
                sum += std::exp(
                    cp[((b * a * c1 + ai * c1 + c) * gh + y) * gw + x] - maxv);
              }
              for (int64_t c = 0; c < c1; ++c) {
                const float e = std::exp(
                    cp[((b * a * c1 + ai * c1 + c) * gh + y) * gw + x] - maxv);
                cls_prob.data_f32()[(b * c1 + c) * total + anchor] =
                    static_cast<float>(e / sum);
              }
              for (int64_t d = 0; d < 4; ++d) {
                loc_pred.data_f32()[b * total * 4 + anchor * 4 + d] =
                    lp[((b * a * 4 + ai * 4 + d) * gh + y) * gw + x];
              }
            }
          }
        }
      }
      anchor_off += a * gh * gw;
    }
    IGC_CHECK_EQ(anchor_off, total);

    // Charge the assembly + per-anchor softmax as one elementwise kernel.
    charge_elementwise(cx, n, bsz * total * c1, 1, 6);

    // Decode stage.
    const Tensor decoded =
        ops::multibox_decode_reference(cls_prob, loc_pred, n.anchors, n.mbox);
    if (n.place == Place::kCpu) {
      cx.clock.charge_cpu(platform_.cpu, cls_prob.numel() * 4,
                          cls_prob.nbytes() + loc_pred.nbytes(), 0.8,
                          n.name + "_decode_cpu");
    } else {
      cx.gpu.launch_elementwise("ssd_decode", bsz * total, [](int64_t) {},
                                2 * c1 + 20, 4 * (c1 + 8));
    }
    set_computed(n, run_nms_stage(cx, n, decoded, n.mbox.nms));
  }

  void exec_box_nms(NodeCtx& cx, const Node& n) {
    charge_layout_edges(cx, n, 1);
    Tensor in = val(n.inputs[0]).materialized
                    ? in_tensor(n)
                    : synthesize_nms_input(g_.node(n.inputs[0]).out_shape,
                                           cx.rng);
    Tensor out;
    if (n.place == Place::kCpu) {
      int64_t evals = 0;
      out = ops::box_nms_reference_counted(in, n.nms, &evals);
      const int64_t count = in.shape()[0] * in.shape()[1];
      cx.clock.charge_cpu(
          platform_.cpu,
          evals * 16 +
              static_cast<int64_t>(static_cast<double>(count) *
                                   std::log2(static_cast<double>(count) + 2.0) * 4.0),
          in.nbytes() * 2, 0.3, n.name);
    } else if (opts_.optimized_vision_ops) {
      out = ops::box_nms_gpu(cx.gpu, in, n.nms);
    } else {
      out = ops::box_nms_gpu_naive(cx.gpu, in, n.nms);
    }
    set_computed(n, std::move(out));
  }

  const Graph& g_;
  const sim::Platform& platform_;
  const ExecOptions& opts_;
  Rng& input_rng_;
  uint64_t base_seed_ = 0;

  std::vector<Value> values_;
  std::vector<bool> live_;
  std::vector<int> layout_block_;
  std::vector<int> pending_;
  std::vector<NodeRun> node_runs_;

  // Arena state (null when opts_.use_arena is off).
  std::optional<MemoryPlan> local_plan_;
  std::optional<BufferArena> local_arena_;
  const MemoryPlan* plan_ = nullptr;
  BufferArena* arena_ = nullptr;

  // Guards pending_/indegree bookkeeping, value release, and peak-memory
  // accounting under wavefront dispatch.
  std::mutex sched_mu_;
  int64_t heap_in_use_ = 0;
  int64_t peak_bytes_ = 0;

  /// Host wall-clock reference for trace dispatch times (traced runs only).
  std::chrono::steady_clock::time_point run_epoch_{};
};

}  // namespace

sim::OpCategory categorize(OpKind kind, Place place) {
  if (kind == OpKind::kDeviceCopy) return sim::OpCategory::kCopy;
  // Constants are resident data, not kernels; never a fallback regardless of
  // where placement tagged them.
  if (kind == OpKind::kConstant) return sim::OpCategory::kOther;
  if (place == Place::kCpu && kind != OpKind::kInput) {
    return sim::OpCategory::kFallback;
  }
  switch (kind) {
    case OpKind::kConv2d:
      return sim::OpCategory::kConv;
    case OpKind::kMultiboxDetection:
    case OpKind::kSsdDetection:
    case OpKind::kYoloDecode:
    case OpKind::kBoxNms:
    case OpKind::kRoiAlign:
    case OpKind::kDetectionConcat:
      return sim::OpCategory::kVision;
    default:
      return sim::OpCategory::kOther;
  }
}

ExecResult execute(const Graph& g, const sim::Platform& platform,
                   const ExecOptions& opts, Rng& input_rng) {
  return ExecutorImpl(g, platform, opts, input_rng).run();
}

}  // namespace igc::graph
