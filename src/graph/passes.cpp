#include "graph/passes.h"

#include <algorithm>

#include "core/error.h"

namespace igc::graph {
namespace {

/// Rewires every consumer of `from` to read `to` instead, and moves the
/// graph output if needed. `from` becomes unreferenced (dead).
void bypass(Graph& g, int from, int to) {
  for (Node& n : g.nodes()) {
    for (int& in : n.inputs) {
      if (in == from) in = to;
    }
  }
  if (g.output() == from) g.set_output(to);
}

/// Nodes reachable from the output (dead pass-through nodes excluded).
std::vector<bool> live_mask(const Graph& g) {
  std::vector<bool> live(static_cast<size_t>(g.num_nodes()), false);
  live[static_cast<size_t>(g.output())] = true;
  for (int id = g.num_nodes() - 1; id >= 0; --id) {
    if (!live[static_cast<size_t>(id)]) continue;
    for (int in : g.node(id).inputs) live[static_cast<size_t>(in)] = true;
  }
  return live;
}

/// Consumer lists counting only live nodes, so earlier passes' bypassed
/// nodes do not inhibit later rewrites.
std::vector<std::vector<int>> live_consumers(const Graph& g) {
  const std::vector<bool> live = live_mask(g);
  std::vector<std::vector<int>> out(static_cast<size_t>(g.num_nodes()));
  for (const Node& n : g.nodes()) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    for (int in : n.inputs) out[static_cast<size_t>(in)].push_back(n.id);
  }
  return out;
}

}  // namespace

int fold_scale_shift_pass(Graph& g) {
  int folded = 0;
  const auto consumers = live_consumers(g);
  for (Node& n : g.nodes()) {
    if (n.kind != OpKind::kScaleShift) continue;
    Node& producer = g.node(n.inputs[0]);
    if (!producer.is_conv()) continue;
    // Folding into the conv mutates its weights; only safe when the conv
    // feeds this scale-shift exclusively.
    if (consumers[static_cast<size_t>(producer.id)].size() != 1) continue;

    // w'[co, ...] = w[co, ...] * scale[co];  b' = b * scale + shift.
    const int64_t co = producer.conv.out_channels;
    const int64_t per_filter = producer.weight.numel() / co;
    Tensor w = producer.weight.clone();
    for (int64_t c = 0; c < co; ++c) {
      const float s = n.scale.data_f32()[c];
      float* wp = w.data_f32() + c * per_filter;
      for (int64_t i = 0; i < per_filter; ++i) wp[i] *= s;
    }
    Tensor b(Shape{co}, DType::kFloat32);
    for (int64_t c = 0; c < co; ++c) {
      const float old_b =
          producer.bias.defined() ? producer.bias.data_f32()[c] : 0.0f;
      b.data_f32()[c] =
          old_b * n.scale.data_f32()[c] + n.shift.data_f32()[c];
    }
    producer.weight = std::move(w);
    producer.bias = std::move(b);
    bypass(g, n.id, producer.id);
    ++folded;
  }
  return folded;
}

int fuse_activation_pass(Graph& g) {
  int fused = 0;
  const auto consumers = live_consumers(g);
  for (Node& n : g.nodes()) {
    if (n.kind != OpKind::kActivation) continue;
    Node& producer = g.node(n.inputs[0]);
    const bool fusable = producer.kind == OpKind::kConv2d ||
                         producer.kind == OpKind::kAdd ||
                         producer.kind == OpKind::kScaleShift ||
                         producer.kind == OpKind::kDense;
    if (!fusable) continue;
    if (consumers[static_cast<size_t>(producer.id)].size() != 1) continue;
    if (producer.fused_activation) continue;
    producer.fused_activation = true;
    producer.fused_act = n.act;
    producer.fused_act_alpha = n.act_alpha;
    bypass(g, n.id, producer.id);
    ++fused;
  }
  return fused;
}

int placement_pass(Graph& g, const std::set<OpKind>& cpu_ops) {
  // Pass 1: tag each node's device. Inputs and constants are host-side;
  // every compute node defaults to GPU unless its kind is in the fallback
  // list.
  for (Node& n : g.nodes()) {
    if (n.kind == OpKind::kInput) {
      n.place = Place::kCpu;
    } else {
      n.place = cpu_ops.count(n.kind) ? Place::kCpu : Place::kGpu;
    }
  }

  // Pass 2: rebuild the node list, inserting a device_copy between any two
  // directly connected nodes on different devices.
  Graph rebuilt;
  std::vector<int> remap(static_cast<size_t>(g.num_nodes()), -1);
  // Track which nodes are still referenced (skip dead pass-throughs).
  std::vector<bool> live(static_cast<size_t>(g.num_nodes()), false);
  live[static_cast<size_t>(g.output())] = true;
  for (int id = g.num_nodes() - 1; id >= 0; --id) {
    if (!live[static_cast<size_t>(id)]) continue;
    for (int in : g.node(id).inputs) live[static_cast<size_t>(in)] = true;
  }

  int copies = 0;
  for (Node& old : g.nodes()) {
    if (!live[static_cast<size_t>(old.id)]) continue;
    Node n = old;  // copy params/tensors
    const int old_id = n.id;
    for (int& in : n.inputs) {
      const int mapped = remap[static_cast<size_t>(in)];
      IGC_CHECK_GE(mapped, 0);
      const Node& producer = rebuilt.node(mapped);
      if (producer.place != n.place) {
        Node copy;
        copy.name = producer.name + "_to_" +
                    (n.place == Place::kGpu ? "gpu" : "cpu");
        copy.kind = OpKind::kDeviceCopy;
        copy.inputs = {mapped};
        copy.out_shape = producer.out_shape;
        copy.place = n.place;  // the copy runs on the destination side
        // Insert through the internal path used by builder methods.
        rebuilt.nodes().push_back(copy);
        rebuilt.nodes().back().id = rebuilt.num_nodes() - 1;
        in = rebuilt.nodes().back().id;
        ++copies;
      } else {
        in = mapped;
      }
    }
    rebuilt.nodes().push_back(n);
    rebuilt.nodes().back().id = rebuilt.num_nodes() - 1;
    remap[static_cast<size_t>(old_id)] = rebuilt.nodes().back().id;
  }
  rebuilt.set_output(remap[static_cast<size_t>(g.output())]);
  rebuilt.validate();
  g = std::move(rebuilt);
  return copies;
}

PassStats optimize(Graph& g, const std::set<OpKind>& cpu_ops) {
  PassStats stats;
  stats.folded_scale_shifts = fold_scale_shift_pass(g);
  stats.fused_activations = fuse_activation_pass(g);
  stats.copies_inserted = placement_pass(g, cpu_ops);
  for (const Node& n : g.nodes()) {
    if (n.place == Place::kGpu) {
      ++stats.gpu_nodes;
    } else {
      ++stats.cpu_nodes;
    }
  }
  return stats;
}

}  // namespace igc::graph
