#include "graph/passes.h"

#include <algorithm>
#include <optional>

#include "core/error.h"
#include "graph/pass_manager.h"

namespace igc::graph {
namespace {

/// Rewires every consumer of `from` to read `to` instead, and moves the
/// graph output if needed. `from` becomes unreferenced (dead) until the
/// dce pass removes it.
void bypass(Graph& g, int from, int to) {
  for (Node& n : g.nodes()) {
    for (int& in : n.inputs) {
      if (in == from) in = to;
    }
  }
  if (g.output() == from) g.set_output(to);
}

/// Consumer lists counting only live nodes, so earlier passes' bypassed
/// nodes do not inhibit later rewrites.
std::vector<std::vector<int>> live_consumers(const Graph& g) {
  const std::vector<bool> live = g.live_mask();
  std::vector<std::vector<int>> out(static_cast<size_t>(g.num_nodes()));
  for (const Node& n : g.nodes()) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    for (int in : n.inputs) out[static_cast<size_t>(in)].push_back(n.id);
  }
  return out;
}

/// Compile-time evaluation of one node whose inputs are all constants.
/// Mirrors the executor's numerics exactly (same reference kernels, same
/// fusion epilogues), so pre-computing never changes an output bit.
/// Returns nullopt for kinds that must stay at runtime (vision ops draw
/// synthetic data; device copies belong to placement).
std::optional<Tensor> eval_constant_node(const Graph& g, const Node& n) {
  std::vector<Tensor> ins;
  ins.reserve(n.inputs.size());
  for (int in : n.inputs) ins.push_back(g.node(in).weight);
  // The executor applies the fused-activation epilogue to conv / add /
  // dense / deconv outputs (exec_conv, finish_heavy, the kAdd case).
  const auto epilogue = [&](Tensor t) {
    if (n.fused_activation) {
      t = ops::activation_reference(t, n.fused_act, n.fused_act_alpha);
    }
    return t;
  };
  switch (n.kind) {
    case OpKind::kScaleShift:
      return ops::scale_shift_reference(ins[0], n.scale, n.shift);
    case OpKind::kActivation:
      return ops::activation_reference(ins[0], n.act, n.act_alpha);
    case OpKind::kAdd:
      return epilogue(ops::add_reference(ins[0], ins[1]));
    case OpKind::kConcat:
      return ops::concat_channels_reference(ins);
    case OpKind::kPool2d:
      return ops::pool2d_reference(ins[0], n.pool);
    case OpKind::kGlobalAvgPool:
      return ops::global_avg_pool_reference(ins[0]);
    case OpKind::kFlatten:
      return ins[0].reshape(n.out_shape);
    case OpKind::kSoftmax:
      return ops::softmax_reference(ins[0]);
    case OpKind::kUpsample2x:
      return ops::upsample2x_reference(ins[0]);
    case OpKind::kDense:
      return epilogue(ops::dense_reference(
          ins[0], n.weight, n.bias.defined() ? &n.bias : nullptr, n.dense));
    case OpKind::kConv2d: {
      Tensor t = ops::conv2d_reference(
          ins[0], n.weight, n.bias.defined() ? &n.bias : nullptr, n.conv);
      if (n.fused_scale_shift) {
        t = ops::scale_shift_reference(t, n.fused_scale, n.fused_shift);
      }
      return epilogue(t);
    }
    case OpKind::kConv2dTranspose:
      return epilogue(ops::conv2d_transpose_reference(
          ins[0], n.weight, n.bias.defined() ? &n.bias : nullptr, n.deconv));
    default:
      return std::nullopt;
  }
}

}  // namespace

int fold_scale_shift_pass(Graph& g) {
  int folded = 0;
  const auto consumers = live_consumers(g);
  const std::vector<bool> live = g.live_mask();
  for (Node& n : g.nodes()) {
    // An already-bypassed marker must not fold again (the scale would apply
    // twice) — skipping dead nodes makes a second run find nothing.
    if (!live[static_cast<size_t>(n.id)]) continue;
    if (n.kind != OpKind::kScaleShift) continue;
    Node& producer = g.node(n.inputs[0]);
    if (!producer.is_conv()) continue;
    // Folding into the conv mutates its weights; only safe when the conv
    // feeds this scale-shift exclusively.
    if (consumers[static_cast<size_t>(producer.id)].size() != 1) continue;

    // w'[co, ...] = w[co, ...] * scale[co];  b' = b * scale + shift.
    const int64_t co = producer.conv.out_channels;
    const int64_t per_filter = producer.weight.numel() / co;
    Tensor w = producer.weight.clone();
    for (int64_t c = 0; c < co; ++c) {
      const float s = n.scale.data_f32()[c];
      float* wp = w.data_f32() + c * per_filter;
      for (int64_t i = 0; i < per_filter; ++i) wp[i] *= s;
    }
    Tensor b(Shape{co}, DType::kFloat32);
    for (int64_t c = 0; c < co; ++c) {
      const float old_b =
          producer.bias.defined() ? producer.bias.data_f32()[c] : 0.0f;
      b.data_f32()[c] =
          old_b * n.scale.data_f32()[c] + n.shift.data_f32()[c];
    }
    producer.weight = std::move(w);
    producer.bias = std::move(b);
    bypass(g, n.id, producer.id);
    ++folded;
  }
  return folded;
}

int fuse_activation_pass(Graph& g) {
  int fused = 0;
  const auto consumers = live_consumers(g);
  const std::vector<bool> live = g.live_mask();
  for (Node& n : g.nodes()) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    if (n.kind != OpKind::kActivation) continue;
    Node& producer = g.node(n.inputs[0]);
    const bool fusable = producer.kind == OpKind::kConv2d ||
                         producer.kind == OpKind::kAdd ||
                         producer.kind == OpKind::kScaleShift ||
                         producer.kind == OpKind::kDense;
    if (!fusable) continue;
    if (consumers[static_cast<size_t>(producer.id)].size() != 1) continue;
    if (producer.fused_activation) continue;
    producer.fused_activation = true;
    producer.fused_act = n.act;
    producer.fused_act_alpha = n.act_alpha;
    bypass(g, n.id, producer.id);
    ++fused;
  }
  return fused;
}

int constant_precompute_pass(Graph& g) {
  int folded = 0;
  const std::vector<bool> live = g.live_mask();
  // Topological order: folding node k into a constant lets a later node
  // whose other inputs are already constant fold in the same sweep, so a
  // whole constant subgraph collapses in one run (and the second run finds
  // nothing left to fold — idempotence). Dead markers left by earlier
  // rewiring passes are skipped: evaluating them would waste compile time
  // on results nothing reads.
  for (Node& n : g.nodes()) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    if (n.kind == OpKind::kConstant || n.kind == OpKind::kInput) continue;
    if (n.inputs.empty()) continue;
    const bool all_const = std::all_of(
        n.inputs.begin(), n.inputs.end(),
        [&](int in) { return g.node(in).kind == OpKind::kConstant; });
    if (!all_const) continue;
    std::optional<Tensor> value = eval_constant_node(g, n);
    if (!value.has_value()) continue;
    IGC_CHECK(value->shape() == n.out_shape)
        << n.name << ": precompute shape " << value->shape().str();
    // Rewrite in place: the node keeps its id and name (consumers and the
    // per-node RNG seeding are untouched); its feeders become dead.
    n.kind = OpKind::kConstant;
    n.weight = std::move(*value);
    n.bias = Tensor();
    n.inputs.clear();
    n.fused_scale_shift = false;
    n.fused_scale = Tensor();
    n.fused_shift = Tensor();
    n.fused_activation = false;
    ++folded;
  }
  return folded;
}

int dead_node_elimination_pass(Graph& g) {
  const std::vector<bool> live = g.live_mask();
  const int dead = static_cast<int>(
      std::count(live.begin(), live.end(), false));
  if (dead == 0) return 0;

  Graph compact;
  std::vector<int> remap(static_cast<size_t>(g.num_nodes()), -1);
  for (Node& old : g.nodes()) {
    if (!live[static_cast<size_t>(old.id)]) continue;
    const int old_id = old.id;
    Node n = std::move(old);  // the source graph is discarded below
    for (int& in : n.inputs) {
      in = remap[static_cast<size_t>(in)];
      IGC_CHECK_GE(in, 0);
    }
    compact.nodes().push_back(std::move(n));
    compact.nodes().back().id = compact.num_nodes() - 1;
    remap[static_cast<size_t>(old_id)] = compact.nodes().back().id;
  }
  compact.set_output(remap[static_cast<size_t>(g.output())]);
  compact.set_shape_spec(g.shape_spec());
  compact.validate();
  g = std::move(compact);
  return dead;
}

int placement_pass(Graph& g, const std::set<OpKind>& cpu_ops) {
  // Pass 1: tag each node's device. Inputs are host-side; constants are
  // resident wherever their consumers read them (unified memory), so they
  // take the GPU default and never cost a per-run upload; every compute
  // node defaults to GPU unless its kind is in the fallback list.
  for (Node& n : g.nodes()) {
    if (n.kind == OpKind::kInput) {
      n.place = Place::kCpu;
    } else if (n.kind == OpKind::kDeviceCopy) {
      // A copy from an earlier placement run keeps its destination side;
      // retagging it would strand it on one device and trigger an endless
      // chain of new copies on repeated runs.
    } else {
      n.place = cpu_ops.count(n.kind) ? Place::kCpu : Place::kGpu;
    }
  }

  // Pass 2: rebuild the node list, inserting a device_copy between any two
  // directly connected nodes on different devices. The rebuild keeps only
  // live nodes, so it compacts even when the dce pass was disabled.
  Graph rebuilt;
  std::vector<int> remap(static_cast<size_t>(g.num_nodes()), -1);
  const std::vector<bool> live = g.live_mask();

  int copies = 0;
  for (Node& old : g.nodes()) {
    if (!live[static_cast<size_t>(old.id)]) continue;
    Node n = old;  // copy params/tensors
    const int old_id = n.id;
    for (int& in : n.inputs) {
      const int mapped = remap[static_cast<size_t>(in)];
      IGC_CHECK_GE(mapped, 0);
      const Node& producer = rebuilt.node(mapped);
      // A device copy's whole job is to bridge devices, so its input being
      // on the far side is expected, not a boundary to patch.
      if (producer.place != n.place && n.kind != OpKind::kDeviceCopy) {
        Node copy;
        copy.name = producer.name + "_to_" +
                    (n.place == Place::kGpu ? "gpu" : "cpu");
        copy.kind = OpKind::kDeviceCopy;
        copy.inputs = {mapped};
        copy.out_shape = producer.out_shape;
        copy.place = n.place;  // the copy runs on the destination side
        // Insert through the internal path used by builder methods.
        rebuilt.nodes().push_back(copy);
        rebuilt.nodes().back().id = rebuilt.num_nodes() - 1;
        in = rebuilt.nodes().back().id;
        ++copies;
      } else {
        in = mapped;
      }
    }
    rebuilt.nodes().push_back(n);
    rebuilt.nodes().back().id = rebuilt.num_nodes() - 1;
    remap[static_cast<size_t>(old_id)] = rebuilt.nodes().back().id;
  }
  rebuilt.set_output(remap[static_cast<size_t>(g.output())]);
  rebuilt.set_shape_spec(g.shape_spec());
  rebuilt.validate();
  g = std::move(rebuilt);
  return copies;
}

PassStats optimize(Graph& g, const std::set<OpKind>& cpu_ops) {
  const PassPipeline pipeline = build_pipeline({}, {}, cpu_ops);
  return pass_stats_from(pipeline.run(g), g);
}

}  // namespace igc::graph
