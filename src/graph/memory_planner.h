// Static memory planning for graph execution.
//
// Integrated GPUs share scarce DRAM with the CPU (the paper notes Acer
// aiSage must shrink SSD inputs to 300x300 because of Mali memory limits),
// so the runtime plans intermediate-buffer reuse ahead of time: each node's
// output gets a buffer id, and buffers are recycled once the last consumer
// has run.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace igc::graph {

struct MemoryPlan {
  /// Buffer id assigned to each node's output. On a compacted graph (the
  /// default pipeline ends in dce/place) every entry is >= 0; only custom
  /// pipelines that skip compaction leave -1 entries for dead nodes.
  std::vector<int> buffer_of_node;
  /// Size in bytes of each buffer.
  std::vector<int64_t> buffer_bytes;

  int64_t total_bytes() const {
    int64_t t = 0;
    for (int64_t b : buffer_bytes) t += b;
    return t;
  }
  /// Total bytes if every node had a private buffer (for reporting).
  int64_t unshared_bytes = 0;
};

/// Greedy liveness-based buffer assignment: a node's output buffer is
/// reusable after its last consumer executes. Weights/constants are not
/// counted (they are resident for the model's lifetime).
MemoryPlan plan_memory(const Graph& g);

}  // namespace igc::graph
