// Static memory planning for graph execution, with dynamic-shape binding.
//
// Integrated GPUs share scarce DRAM with the CPU (the paper notes Acer
// aiSage must shrink SSD inputs to 300x300 because of Mali memory limits),
// so the runtime plans intermediate-buffer reuse ahead of time: each node's
// output gets a buffer id, and buffers are recycled once the last consumer
// has run.
//
// The plan is split into a shape-independent part and a shape-dependent
// part. Buffer *assignment* (buffer_of_node, buffer_holders) depends only
// on liveness — which nodes exist and who consumes whom — so it survives
// any rebinding of batch/resolution within a model's ShapeSpec. Buffer
// *sizes* are symbolic: per-element cost x the node's extent at the bound
// shape, resolved by resolve_buffer_bytes() against a shape-bound graph.
// plan_memory() therefore runs once per compile; new shape bindings only
// re-resolve sizes (counted by the graph.plan.plans metric — a dynamic-shape
// run must not increment it).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace igc::graph {

struct MemoryPlan {
  /// Buffer id assigned to each node's output. On a compacted graph (the
  /// default pipeline ends in dce/place) every entry is >= 0; only custom
  /// pipelines that skip compaction leave -1 entries for dead nodes.
  std::vector<int> buffer_of_node;
  /// Size in bytes of each buffer at the shape the plan was made (or last
  /// rebound) for. The PagedArena resolves this to page counts at bind time.
  std::vector<int64_t> buffer_bytes;
  /// Node ids sharing each buffer, in execution order (the inverse of
  /// buffer_of_node). Used for anti-dependency edges and for re-resolving
  /// buffer sizes at a new shape binding.
  std::vector<std::vector<int>> buffer_holders;

  int64_t total_bytes() const {
    int64_t t = 0;
    for (int64_t b : buffer_bytes) t += b;
    return t;
  }
  /// Total bytes if every node had a private buffer (for reporting).
  int64_t unshared_bytes = 0;
};

/// Greedy liveness-based buffer assignment: a node's output buffer is
/// reusable after its last consumer executes. Weights/constants are not
/// counted (they are resident for the model's lifetime). Increments the
/// graph.plan.plans metric — dynamic-shape rebinding must go through
/// resolve_buffer_bytes() instead of replanning.
MemoryPlan plan_memory(const Graph& g);

/// Resolves the plan's buffer sizes against `shaped` — a graph with the same
/// node structure as the one the plan was made from, but with shapes rebound
/// (see graph/shape_infer.h). Returns one size per buffer: the max over the
/// buffer's holders of numel x 4 bytes. Shape-independent by construction in
/// everything except the sizes, so this is the whole cost of a rebinding.
std::vector<int64_t> resolve_buffer_bytes(const MemoryPlan& plan,
                                          const Graph& shaped);

}  // namespace igc::graph
