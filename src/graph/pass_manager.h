// The graph pass manager (Fig. 1 "Optimized Computational Graph" spine).
//
// Every graph-level optimization — batch-norm folding, operator fusion,
// constant pre-computing (Sec. 3.2.3), dead-node compaction, heterogeneous
// placement (Sec. 3.1.2) — is a named `Pass` over a rewritable `Graph`.
// A `PassPipeline` runs passes in order with per-pass instrumentation:
//
//   * wall time and nodes-rewritten counts go to `obs::MetricsRegistry`
//     under `graph.pass.<name>.{runs,rewrites}` (counters) and
//     `graph.pass.<name>.us` (histogram of per-run wall microseconds);
//   * `PassPipelineOptions::validate_after_each` runs `Graph::validate()`
//     after every pass (opt-in — compile-time cost only);
//   * `dump_graph_after` streams `Graph::summary()` after selected passes
//     (the `igc-compile --dump-graph-after=<pass>` view).
//
// `compile()` builds its pipeline from `CompileOptions` (explicit order or
// the default, minus `disabled_passes`), so any pass can be reordered,
// disabled, or replaced without touching the compiler.
#pragma once

#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/passes.h"

namespace igc::graph {

/// One named graph rewrite. `run` mutates the graph in place and returns the
/// number of rewrites it performed (nodes folded, fused, removed, or
/// inserted); a second run on the same graph must return 0 (idempotence —
/// tested for every registered pass).
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  virtual int run(Graph& g) = 0;
};

/// Per-pass record of one pipeline execution.
struct PassRunStats {
  std::string pass;
  int rewrites = 0;
  double wall_ms = 0.0;
};

struct PassPipelineOptions {
  /// Run Graph::validate() after every pass (throws igc::Error on a broken
  /// rewrite). Opt-in: costs compile time only, never changes the graph.
  bool validate_after_each = false;
  /// Stream Graph::summary() to `dump_stream` after each listed pass.
  std::set<std::string> dump_graph_after;
  /// Destination for graph dumps (std::cerr when null).
  std::ostream* dump_stream = nullptr;
};

/// An ordered list of passes, run front to back over one graph.
class PassPipeline {
 public:
  PassPipeline() = default;
  explicit PassPipeline(PassPipelineOptions opts) : opts_(std::move(opts)) {}

  PassPipeline& add(std::unique_ptr<Pass> pass);

  /// Names of the passes in run order.
  std::vector<std::string> pass_names() const;

  /// Runs every pass in order over `g`, recording graph.pass.* metrics and
  /// honoring the validate/dump options. Returns one record per pass.
  std::vector<PassRunStats> run(Graph& g) const;

 private:
  PassPipelineOptions opts_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// The standard pipeline order: fold_scale_shift, fuse_activation,
/// constant_precompute, dce, place.
const std::vector<std::string>& default_pass_names();

/// The default pipeline as a comma-joined string ("fold_scale_shift,...")
/// for bench-row metadata headers.
const std::string& default_pass_names_joined();

/// Comma-joins an arbitrary pass-name list (same format as above).
std::string join_pass_names(const std::vector<std::string>& names);

/// Instantiates a registered pass by name. `cpu_ops` parameterizes "place"
/// (operator kinds that fall back to the companion CPU); other passes ignore
/// it. Throws igc::Error on an unknown name, listing the registered passes.
std::unique_ptr<Pass> make_pass(const std::string& name,
                                const std::set<OpKind>& cpu_ops = {});

/// Builds a pipeline from `names` (empty = default_pass_names()) minus any
/// names in `disabled`. Disabling a name not in the list is a no-op;
/// unknown names in `names` throw.
PassPipeline build_pipeline(const std::vector<std::string>& names,
                            const std::set<std::string>& disabled,
                            const std::set<OpKind>& cpu_ops = {},
                            PassPipelineOptions opts = {});

/// Summarizes a pipeline run into the compile-facing PassStats: per-pass
/// rewrite counts mapped to their legacy fields, plus device counts over the
/// graph's *live* nodes only (dead pass-through markers — present when a
/// custom pipeline omits compaction — are never counted).
PassStats pass_stats_from(const std::vector<PassRunStats>& report,
                          const Graph& g);

}  // namespace igc::graph
