#include "graph/pass_manager.h"

#include <chrono>
#include <functional>
#include <iostream>
#include <utility>

#include "core/error.h"
#include "obs/metrics.h"

namespace igc::graph {
namespace {

/// Adapter turning a free-function rewrite into a named Pass.
class FunctionPass : public Pass {
 public:
  FunctionPass(std::string name, std::function<int(Graph&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string_view name() const override { return name_; }
  int run(Graph& g) override { return fn_(g); }

 private:
  std::string name_;
  std::function<int(Graph&)> fn_;
};

}  // namespace

PassPipeline& PassPipeline::add(std::unique_ptr<Pass> pass) {
  IGC_CHECK(pass != nullptr) << "null pass added to pipeline";
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassPipeline::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.emplace_back(p->name());
  return names;
}

std::vector<PassRunStats> PassPipeline::run(Graph& g) const {
  auto& reg = obs::MetricsRegistry::global();
  std::vector<PassRunStats> report;
  report.reserve(passes_.size());
  for (const auto& pass : passes_) {
    PassRunStats st;
    st.pass = std::string(pass->name());
    const auto t0 = std::chrono::steady_clock::now();
    st.rewrites = pass->run(g);
    const auto t1 = std::chrono::steady_clock::now();
    st.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const std::string prefix = "graph.pass." + st.pass;
    reg.counter(prefix + ".runs").add(1);
    reg.counter(prefix + ".rewrites").add(st.rewrites);
    reg.histogram(prefix + ".us")
        .observe(static_cast<int64_t>(st.wall_ms * 1000.0));

    if (opts_.validate_after_each) g.validate();
    if (opts_.dump_graph_after.count(st.pass)) {
      std::ostream& os =
          opts_.dump_stream != nullptr ? *opts_.dump_stream : std::cerr;
      os << "=== graph after pass '" << st.pass << "' ===\n"
         << g.summary() << '\n';
    }
    report.push_back(std::move(st));
  }
  return report;
}

const std::vector<std::string>& default_pass_names() {
  static const std::vector<std::string> kNames = {
      "fold_scale_shift", "fuse_activation", "constant_precompute",
      "dce",              "place",
  };
  return kNames;
}

const std::string& default_pass_names_joined() {
  static const std::string kJoined = join_pass_names(default_pass_names());
  return kJoined;
}

std::string join_pass_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ',';
    out += n;
  }
  return out;
}

std::unique_ptr<Pass> make_pass(const std::string& name,
                                const std::set<OpKind>& cpu_ops) {
  if (name == "fold_scale_shift") {
    return std::make_unique<FunctionPass>(name, fold_scale_shift_pass);
  }
  if (name == "fuse_activation") {
    return std::make_unique<FunctionPass>(name, fuse_activation_pass);
  }
  if (name == "constant_precompute") {
    return std::make_unique<FunctionPass>(name, constant_precompute_pass);
  }
  if (name == "dce") {
    return std::make_unique<FunctionPass>(name, dead_node_elimination_pass);
  }
  if (name == "place") {
    return std::make_unique<FunctionPass>(
        name, [cpu_ops](Graph& g) { return placement_pass(g, cpu_ops); });
  }
  IGC_CHECK(false) << "unknown graph pass '" << name << "' (registered: "
                   << default_pass_names_joined() << ")";
}

PassPipeline build_pipeline(const std::vector<std::string>& names,
                            const std::set<std::string>& disabled,
                            const std::set<OpKind>& cpu_ops,
                            PassPipelineOptions opts) {
  const std::vector<std::string>& order =
      names.empty() ? default_pass_names() : names;
  PassPipeline pipeline(std::move(opts));
  for (const std::string& n : order) {
    if (disabled.count(n)) continue;
    pipeline.add(make_pass(n, cpu_ops));
  }
  return pipeline;
}

PassStats pass_stats_from(const std::vector<PassRunStats>& report,
                          const Graph& g) {
  PassStats stats;
  for (const PassRunStats& st : report) {
    if (st.pass == "fold_scale_shift") {
      stats.folded_scale_shifts += st.rewrites;
    } else if (st.pass == "fuse_activation") {
      stats.fused_activations += st.rewrites;
    } else if (st.pass == "constant_precompute") {
      stats.precomputed_constants += st.rewrites;
    } else if (st.pass == "dce") {
      stats.removed_dead_nodes += st.rewrites;
    } else if (st.pass == "place") {
      stats.copies_inserted += st.rewrites;
    }
  }
  const std::vector<bool> live = g.live_mask();
  for (const Node& n : g.nodes()) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    if (n.place == Place::kGpu) {
      ++stats.gpu_nodes;
    } else {
      ++stats.cpu_nodes;
    }
  }
  return stats;
}

}  // namespace igc::graph
