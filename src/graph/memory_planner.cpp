#include "graph/memory_planner.h"

#include <algorithm>

#include "core/error.h"
#include "obs/metrics.h"

namespace igc::graph {
namespace {

obs::Counter& plan_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("graph.plan.plans");
  return c;
}

}  // namespace

MemoryPlan plan_memory(const Graph& g) {
  const int n = g.num_nodes();
  MemoryPlan plan;
  plan.buffer_of_node.assign(static_cast<size_t>(n), -1);

  // The default pipeline compacts the graph (dce/place), so normally every
  // node is live and gets a buffer. A custom pipeline that skips compaction
  // may leave bypassed nodes; those get no buffer (-1) and do not count as
  // consumers.
  const std::vector<bool> live = g.live_mask();

  // Liveness: node output is live from its definition to its last (live)
  // consumer; the graph output is live to the end.
  std::vector<int> last_use(static_cast<size_t>(n), -1);
  for (const Node& node : g.nodes()) {
    if (!live[static_cast<size_t>(node.id)]) continue;
    for (int in : node.inputs) {
      last_use[static_cast<size_t>(in)] =
          std::max(last_use[static_cast<size_t>(in)], node.id);
    }
  }
  last_use[static_cast<size_t>(g.output())] = n;

  struct FreeBuf {
    int id;
    int64_t bytes;
  };
  std::vector<FreeBuf> free_list;
  // Buffers whose producing value dies at step i are returned after step i.
  std::vector<std::vector<int>> expiring(static_cast<size_t>(n + 1));

  for (const Node& node : g.nodes()) {
    if (!live[static_cast<size_t>(node.id)]) continue;  // no buffer
    const int64_t bytes = node.out_shape.numel() * 4;
    plan.unshared_bytes += bytes;
    // Best-fit reuse: smallest free buffer that fits.
    int best = -1;
    for (size_t i = 0; i < free_list.size(); ++i) {
      if (free_list[i].bytes >= bytes &&
          (best < 0 || free_list[i].bytes < free_list[static_cast<size_t>(best)].bytes)) {
        best = static_cast<int>(i);
      }
    }
    int buf_id;
    if (best >= 0) {
      buf_id = free_list[static_cast<size_t>(best)].id;
      free_list.erase(free_list.begin() + best);
    } else {
      buf_id = static_cast<int>(plan.buffer_bytes.size());
      plan.buffer_bytes.push_back(bytes);
      plan.buffer_holders.emplace_back();
    }
    plan.buffer_bytes[static_cast<size_t>(buf_id)] =
        std::max(plan.buffer_bytes[static_cast<size_t>(buf_id)], bytes);
    plan.buffer_of_node[static_cast<size_t>(node.id)] = buf_id;
    plan.buffer_holders[static_cast<size_t>(buf_id)].push_back(node.id);
    const int death = last_use[static_cast<size_t>(node.id)];
    if (death <= n) {
      expiring[static_cast<size_t>(std::min(death, n))].push_back(buf_id);
    }
    // Return buffers freed by values that died at this step.
    for (int freed : expiring[static_cast<size_t>(node.id)]) {
      free_list.push_back(
          {freed, plan.buffer_bytes[static_cast<size_t>(freed)]});
    }
  }
  plan_counter().add(1);
  return plan;
}

std::vector<int64_t> resolve_buffer_bytes(const MemoryPlan& plan,
                                          const Graph& shaped) {
  std::vector<int64_t> bytes(plan.buffer_bytes.size(), 0);
  for (size_t b = 0; b < plan.buffer_holders.size(); ++b) {
    for (int node_id : plan.buffer_holders[b]) {
      IGC_CHECK_GE(node_id, 0);
      IGC_CHECK_LT(node_id, shaped.num_nodes())
          << "resolve_buffer_bytes: plan does not match the shaped graph";
      bytes[b] = std::max(bytes[b],
                          shaped.nodes()[static_cast<size_t>(node_id)]
                                  .out_shape.numel() *
                              4);
    }
  }
  return bytes;
}

}  // namespace igc::graph
