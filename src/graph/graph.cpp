#include "graph/graph.h"

#include <sstream>

#include "core/error.h"

namespace igc::graph {

std::string_view op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kInput: return "input";
    case OpKind::kConstant: return "constant";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kConv2dTranspose: return "conv2d_transpose";
    case OpKind::kScaleShift: return "scale_shift";
    case OpKind::kActivation: return "activation";
    case OpKind::kAdd: return "add";
    case OpKind::kConcat: return "concat";
    case OpKind::kPool2d: return "pool2d";
    case OpKind::kGlobalAvgPool: return "global_avg_pool";
    case OpKind::kDense: return "dense";
    case OpKind::kFlatten: return "flatten";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kUpsample2x: return "upsample2x";
    case OpKind::kMultiboxDetection: return "multibox_detection";
    case OpKind::kSsdDetection: return "ssd_detection";
    case OpKind::kYoloDecode: return "yolo_decode";
    case OpKind::kDetectionConcat: return "detection_concat";
    case OpKind::kBoxNms: return "box_nms";
    case OpKind::kRoiAlign: return "roi_align";
    case OpKind::kDeviceCopy: return "device_copy";
  }
  return "unknown";
}

int Graph::push(Node n) {
  n.id = static_cast<int>(nodes_.size());
  for (int in : n.inputs) {
    IGC_CHECK_GE(in, 0);
    IGC_CHECK_LT(in, n.id) << "inputs must precede node " << n.name;
  }
  nodes_.push_back(std::move(n));
  output_ = nodes_.back().id;
  return nodes_.back().id;
}

Node& Graph::node(int id) {
  IGC_CHECK_GE(id, 0);
  IGC_CHECK_LT(id, num_nodes());
  return nodes_[static_cast<size_t>(id)];
}

const Node& Graph::node(int id) const {
  IGC_CHECK_GE(id, 0);
  IGC_CHECK_LT(id, num_nodes());
  return nodes_[static_cast<size_t>(id)];
}

int Graph::add_input(const std::string& name, Shape shape) {
  Node n;
  n.name = name;
  n.kind = OpKind::kInput;
  n.out_shape = std::move(shape);
  return push(std::move(n));
}

int Graph::add_constant(const std::string& name, Tensor value) {
  IGC_CHECK(value.defined()) << name << ": constant needs a bound tensor";
  Node n;
  n.name = name;
  n.kind = OpKind::kConstant;
  n.out_shape = value.shape();
  n.weight = std::move(value);
  return push(std::move(n));
}

int Graph::add_conv2d(const std::string& name, int input, ops::Conv2dParams p,
                      Tensor weight, Tensor bias) {
  p.validate();
  const Node& in = node(input);
  IGC_CHECK(in.out_shape ==
            Shape({p.batch, p.in_channels, p.in_h, p.in_w}))
      << name << ": conv input shape " << in.out_shape.str();
  IGC_CHECK(weight.shape() == Shape({p.out_channels, p.in_channels / p.groups,
                                     p.kernel_h, p.kernel_w}));
  Node n;
  n.name = name;
  n.kind = OpKind::kConv2d;
  n.inputs = {input};
  n.conv = p;
  n.weight = std::move(weight);
  n.bias = std::move(bias);
  n.out_shape = Shape{p.batch, p.out_channels, p.out_h(), p.out_w()};
  return push(std::move(n));
}

int Graph::add_conv2d_transpose(const std::string& name, int input,
                                ops::Conv2dTransposeParams p, Tensor weight,
                                Tensor bias) {
  p.validate();
  const Node& in = node(input);
  IGC_CHECK(in.out_shape == Shape({p.batch, p.in_channels, p.in_h, p.in_w}))
      << name << ": deconv input shape " << in.out_shape.str();
  IGC_CHECK(weight.shape() ==
            Shape({p.in_channels, p.out_channels, p.kernel, p.kernel}));
  Node n;
  n.name = name;
  n.kind = OpKind::kConv2dTranspose;
  n.inputs = {input};
  n.deconv = p;
  n.weight = std::move(weight);
  n.bias = std::move(bias);
  n.out_shape = Shape{p.batch, p.out_channels, p.out_h(), p.out_w()};
  return push(std::move(n));
}

int Graph::add_scale_shift(const std::string& name, int input, Tensor scale,
                           Tensor shift) {
  const Node& in = node(input);
  IGC_CHECK_EQ(in.out_shape.ndim(), 4);
  IGC_CHECK_EQ(scale.numel(), in.out_shape[1]);
  IGC_CHECK_EQ(shift.numel(), in.out_shape[1]);
  Node n;
  n.name = name;
  n.kind = OpKind::kScaleShift;
  n.inputs = {input};
  n.scale = std::move(scale);
  n.shift = std::move(shift);
  n.out_shape = in.out_shape;
  return push(std::move(n));
}

int Graph::add_activation(const std::string& name, int input,
                          ops::Activation act, float alpha) {
  Node n;
  n.name = name;
  n.kind = OpKind::kActivation;
  n.inputs = {input};
  n.act = act;
  n.act_alpha = alpha;
  n.out_shape = node(input).out_shape;
  return push(std::move(n));
}

int Graph::add_add(const std::string& name, int a, int b) {
  IGC_CHECK(node(a).out_shape == node(b).out_shape)
      << name << ": add shape mismatch";
  Node n;
  n.name = name;
  n.kind = OpKind::kAdd;
  n.inputs = {a, b};
  n.out_shape = node(a).out_shape;
  return push(std::move(n));
}

int Graph::add_concat(const std::string& name, const std::vector<int>& inputs) {
  IGC_CHECK(!inputs.empty());
  int64_t c = 0;
  const Shape& first = node(inputs[0]).out_shape;
  for (int in : inputs) {
    const Shape& s = node(in).out_shape;
    IGC_CHECK_EQ(s.ndim(), 4);
    IGC_CHECK_EQ(s[0], first[0]);
    IGC_CHECK_EQ(s[2], first[2]);
    IGC_CHECK_EQ(s[3], first[3]);
    c += s[1];
  }
  Node n;
  n.name = name;
  n.kind = OpKind::kConcat;
  n.inputs = inputs;
  n.out_shape = Shape{first[0], c, first[2], first[3]};
  return push(std::move(n));
}

int Graph::add_pool2d(const std::string& name, int input, ops::Pool2dParams p) {
  const Shape& s = node(input).out_shape;
  IGC_CHECK_EQ(s.ndim(), 4);
  Node n;
  n.name = name;
  n.kind = OpKind::kPool2d;
  n.inputs = {input};
  n.pool = p;
  n.out_shape = Shape{s[0], s[1], p.out_dim(s[2]), p.out_dim(s[3])};
  return push(std::move(n));
}

int Graph::add_global_avg_pool(const std::string& name, int input) {
  const Shape& s = node(input).out_shape;
  IGC_CHECK_EQ(s.ndim(), 4);
  Node n;
  n.name = name;
  n.kind = OpKind::kGlobalAvgPool;
  n.inputs = {input};
  n.out_shape = Shape{s[0], s[1], 1, 1};
  return push(std::move(n));
}

int Graph::add_dense(const std::string& name, int input, ops::DenseParams p,
                     Tensor weight, Tensor bias) {
  const Shape& s = node(input).out_shape;
  IGC_CHECK(s == Shape({p.batch, p.in_features}))
      << name << ": dense input " << s.str();
  IGC_CHECK(weight.shape() == Shape({p.out_features, p.in_features}));
  Node n;
  n.name = name;
  n.kind = OpKind::kDense;
  n.inputs = {input};
  n.dense = p;
  n.weight = std::move(weight);
  n.bias = std::move(bias);
  n.out_shape = Shape{p.batch, p.out_features};
  return push(std::move(n));
}

int Graph::add_flatten(const std::string& name, int input) {
  const Shape& s = node(input).out_shape;
  Node n;
  n.name = name;
  n.kind = OpKind::kFlatten;
  n.inputs = {input};
  n.out_shape = Shape{s[0], s.numel() / s[0]};
  return push(std::move(n));
}

int Graph::add_softmax(const std::string& name, int input) {
  Node n;
  n.name = name;
  n.kind = OpKind::kSoftmax;
  n.inputs = {input};
  n.out_shape = node(input).out_shape;
  return push(std::move(n));
}

int Graph::add_upsample2x(const std::string& name, int input) {
  const Shape& s = node(input).out_shape;
  IGC_CHECK_EQ(s.ndim(), 4);
  Node n;
  n.name = name;
  n.kind = OpKind::kUpsample2x;
  n.inputs = {input};
  n.out_shape = Shape{s[0], s[1], 2 * s[2], 2 * s[3]};
  return push(std::move(n));
}

int Graph::add_multibox_detection(const std::string& name, int cls_prob,
                                  int loc_pred, Tensor anchors,
                                  ops::MultiboxDetectionParams p) {
  const Shape& cs = node(cls_prob).out_shape;
  IGC_CHECK_EQ(cs.ndim(), 3);
  const int64_t num_anchors = cs[2];
  IGC_CHECK(anchors.shape() == Shape({num_anchors, 4}));
  IGC_CHECK(node(loc_pred).out_shape == Shape({cs[0], num_anchors * 4}));
  Node n;
  n.name = name;
  n.kind = OpKind::kMultiboxDetection;
  n.inputs = {cls_prob, loc_pred};
  n.mbox = p;
  n.anchors = std::move(anchors);
  n.out_shape = Shape{cs[0], num_anchors, 6};
  return push(std::move(n));
}

int Graph::add_ssd_detection(const std::string& name,
                             const std::vector<std::pair<int, int>>& heads,
                             Tensor anchors, int64_t num_classes_incl_bg,
                             ops::MultiboxDetectionParams p) {
  IGC_CHECK(!heads.empty());
  IGC_CHECK_GE(num_classes_incl_bg, 2);
  Node n;
  n.name = name;
  n.kind = OpKind::kSsdDetection;
  n.mbox = p;
  n.ssd_num_classes = num_classes_incl_bg;
  int64_t total_anchors = 0;
  int64_t batch = -1;
  for (const auto& [cls_id, loc_id] : heads) {
    const Shape& cs = node(cls_id).out_shape;
    const Shape& ls = node(loc_id).out_shape;
    IGC_CHECK_EQ(cs.ndim(), 4);
    IGC_CHECK_EQ(ls.ndim(), 4);
    if (batch < 0) batch = cs[0];
    IGC_CHECK_EQ(cs[0], batch);
    IGC_CHECK_EQ(cs[1] % num_classes_incl_bg, 0)
        << name << ": cls channels " << cs[1];
    const int64_t a = cs[1] / num_classes_incl_bg;
    IGC_CHECK_EQ(ls[1], a * 4) << name << ": loc channels " << ls[1];
    IGC_CHECK_EQ(ls[2], cs[2]);
    IGC_CHECK_EQ(ls[3], cs[3]);
    total_anchors += a * cs[2] * cs[3];
    n.inputs.push_back(cls_id);
    n.inputs.push_back(loc_id);
  }
  IGC_CHECK(anchors.shape() == Shape({total_anchors, 4}))
      << name << ": anchors " << anchors.shape().str() << " vs "
      << total_anchors;
  n.anchors = std::move(anchors);
  n.out_shape = Shape{batch, total_anchors, 6};
  return push(std::move(n));
}

int Graph::add_yolo_decode(const std::string& name, int input,
                           ops::YoloDecodeParams p) {
  const Shape& s = node(input).out_shape;
  IGC_CHECK_EQ(s.ndim(), 4);
  const int64_t a = static_cast<int64_t>(p.anchors.size());
  IGC_CHECK_EQ(s[1], a * (5 + p.num_classes));
  Node n;
  n.name = name;
  n.kind = OpKind::kYoloDecode;
  n.inputs = {input};
  n.yolo = p;
  n.out_shape = Shape{s[0], s[2] * s[3] * a, 6};
  return push(std::move(n));
}

int Graph::add_detection_concat(const std::string& name,
                                const std::vector<int>& inputs) {
  IGC_CHECK(!inputs.empty());
  int64_t total = 0;
  const Shape& first = node(inputs[0]).out_shape;
  for (int in : inputs) {
    const Shape& s = node(in).out_shape;
    IGC_CHECK_EQ(s.ndim(), 3);
    IGC_CHECK_EQ(s[0], first[0]);
    IGC_CHECK_EQ(s[2], 6);
    total += s[1];
  }
  Node n;
  n.name = name;
  n.kind = OpKind::kDetectionConcat;
  n.inputs = inputs;
  n.out_shape = Shape{first[0], total, 6};
  return push(std::move(n));
}

int Graph::add_box_nms(const std::string& name, int input, ops::NmsParams p) {
  const Shape& s = node(input).out_shape;
  IGC_CHECK_EQ(s.ndim(), 3);
  IGC_CHECK_EQ(s[2], 6);
  Node n;
  n.name = name;
  n.kind = OpKind::kBoxNms;
  n.inputs = {input};
  n.nms = p;
  n.out_shape = s;
  return push(std::move(n));
}

int Graph::add_roi_align(const std::string& name, int features, int rois,
                         ops::RoiAlignParams p) {
  const Shape& fs = node(features).out_shape;
  const Shape& rs = node(rois).out_shape;
  IGC_CHECK_EQ(fs.ndim(), 4);
  IGC_CHECK_EQ(rs.ndim(), 2);
  IGC_CHECK_EQ(rs[1], 5);
  Node n;
  n.name = name;
  n.kind = OpKind::kRoiAlign;
  n.inputs = {features, rois};
  n.roi = p;
  n.out_shape = Shape{rs[0], fs[1], p.pooled_h, p.pooled_w};
  return push(std::move(n));
}

std::vector<std::vector<int>> Graph::consumers() const {
  std::vector<std::vector<int>> out(nodes_.size());
  for (const Node& n : nodes_) {
    for (int in : n.inputs) out[static_cast<size_t>(in)].push_back(n.id);
  }
  return out;
}

std::vector<bool> Graph::live_mask() const {
  std::vector<bool> live(nodes_.size(), false);
  if (output_ < 0) return live;
  live[static_cast<size_t>(output_)] = true;
  for (int id = num_nodes() - 1; id >= 0; --id) {
    if (!live[static_cast<size_t>(id)]) continue;
    for (int in : node(id).inputs) live[static_cast<size_t>(in)] = true;
  }
  return live;
}

std::vector<int> Graph::conv_node_ids() const {
  std::vector<int> ids;
  for (const Node& n : nodes_) {
    if (n.is_conv()) ids.push_back(n.id);
  }
  return ids;
}

int64_t Graph::total_conv_flops() const {
  int64_t f = 0;
  for (const Node& n : nodes_) {
    if (n.is_conv()) f += n.conv.flops();
  }
  return f;
}

std::string Graph::summary() const {
  // Mark liveness so bypassed pass-through nodes are hidden.
  const std::vector<bool> live = live_mask();
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%4s  %-18s %-28s %-22s %-4s %s\n", "id",
                "op", "name", "shape", "dev", "inputs");
  os << line;
  for (const Node& n : nodes_) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    std::string inputs;
    for (int in : n.inputs) {
      if (!inputs.empty()) inputs += ",";
      inputs += std::to_string(in);
    }
    std::string op(op_kind_name(n.kind));
    if (n.fused_activation) op += "+act";
    std::snprintf(line, sizeof(line), "%4d  %-18s %-28s %-22s %-4s %s\n", n.id,
                  op.c_str(), n.name.substr(0, 27).c_str(),
                  n.out_shape.str().c_str(),
                  n.place == Place::kCpu
                      ? "cpu"
                      : (n.place == Place::kGpu ? "gpu" : "-"),
                  inputs.c_str());
    os << line;
  }
  return os.str();
}

void Graph::validate() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    IGC_CHECK_EQ(n.id, static_cast<int>(i))
        << n.name << ": node id does not match its list position";
    for (int in : n.inputs) {
      IGC_CHECK_GE(in, 0);
      IGC_CHECK_LT(in, n.id) << n.name << ": edge breaks topological order";
    }
    if (n.kind == OpKind::kConstant) {
      IGC_CHECK(n.weight.defined()) << n.name << ": constant without a tensor";
      IGC_CHECK(n.inputs.empty()) << n.name << ": constant with inputs";
      IGC_CHECK(n.weight.shape() == n.out_shape)
          << n.name << ": constant tensor/shape mismatch";
    }
  }
  IGC_CHECK_GE(output_, 0);
  IGC_CHECK_LT(output_, num_nodes());
}

}  // namespace igc::graph
