// Dynamic-shape rebinding (the "ShapeSpec" half of the paged-arena stack).
//
// Graphs are stored concretely shaped at their *seed* binding; a ShapeSpec
// (graph/graph.h) declares which dims may vary. rebind_shapes() produces a
// copy of the graph with every node's shape re-derived for a new
// (batch, hw) binding using exactly the formulas the builders use — conv
// out_h/out_w arithmetic, pool windows, concat sums, detection-head anchor
// math — so a rebound graph is indistinguishable from one built at that
// shape. Buffer assignment is shape-independent (memory_planner.h), so a
// rebinding costs a shape walk plus a size re-resolution: zero replanning,
// zero recompiling.
//
// Structural constants stay fixed and are validated, not silently resized:
// a binding that would change a dense layer's input features or a detection
// head's anchor grid is a hard igc::Error naming the offending node.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace igc::graph {

/// Throws igc::Error unless (batch, hw) is inside `spec`'s declared bounds.
/// `hw` == 0 means "keep the seed resolution" and is always valid; `batch`
/// must always be >= 1.
void validate_binding(const ShapeSpec& spec, int64_t batch, int64_t hw);

/// Returns a copy of `g` with all node shapes (and the shape-dependent op
/// params: conv/deconv batch + spatial extents, dense batch) re-derived for
/// input batch `batch` and input resolution `hw` x `hw` (`hw` == 0 keeps the
/// seed resolution). Only rank-4 graph inputs are rebound; parameter-style
/// inputs (e.g. ROI lists) keep their shapes. Does not consult the
/// ShapeSpec — callers validate with validate_binding() first.
Graph rebind_shapes(const Graph& g, int64_t batch, int64_t hw);

}  // namespace igc::graph
