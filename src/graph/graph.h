// The computational graph (Fig. 1: "Computational Graph" /
// "Optimized Computational Graph").
//
// A Graph is a topologically ordered list of nodes. Model builders
// (src/models) construct graphs through the typed helper methods; the passes
// in src/graph/passes.h rewrite them; the executor in src/graph/executor.h
// runs them against a simulated platform.
#pragma once

#include <string>
#include <vector>

#include "ops/nn/conv2d.h"
#include "ops/nn/conv2d_transpose.h"
#include "ops/nn/nn_ops.h"
#include "ops/vision/nms.h"
#include "ops/vision/roi_align.h"
#include "ops/vision/yolo.h"
#include "tensor/layout.h"
#include "tensor/tensor.h"

namespace igc::graph {

enum class OpKind {
  kInput,
  kConstant,  // compile-time tensor bound into the graph (resident weight)
  kConv2d,
  kConv2dTranspose,
  kScaleShift,  // folded batch norm
  kActivation,
  kAdd,
  kConcat,
  kPool2d,
  kGlobalAvgPool,
  kDense,
  kFlatten,
  kSoftmax,
  kUpsample2x,
  kMultiboxDetection,
  kSsdDetection,  // fused multi-scale softmax + decode + NMS (SSD head)
  kYoloDecode,
  kDetectionConcat,  // concat (B, N_i, 6) candidate lists along N
  kBoxNms,
  kRoiAlign,  // bilinear region pooling over proposal boxes
  kDeviceCopy,
};

std::string_view op_kind_name(OpKind k);

/// Where a node executes after placement (Sec. 3.1.2).
enum class Place { kUnassigned, kGpu, kCpu };

/// Declared dynamic-shape bounds for a model graph. The graph itself is
/// always concretely shaped (the builders bake one *seed* shape, and every
/// stored shape is that of the seed binding); a ShapeSpec says which symbolic
/// dimensions — batch, input height/width — may be rebound at run time and
/// within what bounds. shape_infer.h re-derives every node shape for a new
/// binding; buffer assignment is shape-independent, so rebinding never
/// replans (see memory_planner.h).
///
/// Detection/segmentation models declare dynamic batch only: their anchor
/// grids and skip-connection alignment are baked for the seed resolution, so
/// a resolution change is a hard rebind error rather than a silent drift.
struct ShapeSpec {
  bool dynamic_batch = false;
  bool dynamic_hw = false;
  int64_t min_batch = 1, max_batch = 1;
  int64_t min_hw = 1, max_hw = 1;
  /// The binding the graph's stored shapes correspond to.
  int64_t seed_batch = 1;
  int64_t seed_hw = 0;  // 0 for graphs without a spatial input

  bool is_dynamic() const { return dynamic_batch || dynamic_hw; }
};

struct Node {
  int id = -1;
  std::string name;
  OpKind kind = OpKind::kInput;
  std::vector<int> inputs;
  Shape out_shape;
  Place place = Place::kUnassigned;

  // Operator parameters (used according to `kind`).
  ops::Conv2dParams conv;
  ops::Conv2dTransposeParams deconv;
  ops::DenseParams dense;
  ops::Pool2dParams pool;
  ops::Activation act = ops::Activation::kRelu;
  float act_alpha = 0.1f;
  ops::MultiboxDetectionParams mbox;
  ops::YoloDecodeParams yolo;
  ops::NmsParams nms;
  ops::RoiAlignParams roi;

  // Bound parameter tensors.
  Tensor weight;   // conv / dense
  Tensor bias;     // conv / dense (may be undefined)
  Tensor scale;    // scale-shift
  Tensor shift;    // scale-shift
  Tensor anchors;  // multibox detection (pre-computed priors)
  /// SSD fused head: number of classes including background.
  int64_t ssd_num_classes = 0;

  // Fusion epilogues applied by the executor after the main op
  // (conv+bn+relu fusion, Sec. 3.2.3 "operator fusion").
  bool fused_scale_shift = false;
  Tensor fused_scale, fused_shift;
  bool fused_activation = false;
  ops::Activation fused_act = ops::Activation::kRelu;
  float fused_act_alpha = 0.1f;

  bool is_conv() const { return kind == OpKind::kConv2d; }
};

class Graph {
 public:
  /// Node construction (returns the new node id). Inputs must already exist,
  /// preserving topological order by construction.
  int add_input(const std::string& name, Shape shape);
  /// A compile-time constant tensor (stored in the node's `weight` slot).
  /// Resident like model weights: execution charges no kernel for it, and
  /// the constant-precompute pass folds operators whose inputs are all
  /// constants into new constants.
  int add_constant(const std::string& name, Tensor value);
  int add_conv2d(const std::string& name, int input, ops::Conv2dParams p,
                 Tensor weight, Tensor bias = {});
  int add_conv2d_transpose(const std::string& name, int input,
                           ops::Conv2dTransposeParams p, Tensor weight,
                           Tensor bias = {});
  int add_scale_shift(const std::string& name, int input, Tensor scale,
                      Tensor shift);
  int add_activation(const std::string& name, int input, ops::Activation act,
                     float alpha = 0.1f);
  int add_add(const std::string& name, int a, int b);
  int add_concat(const std::string& name, const std::vector<int>& inputs);
  int add_pool2d(const std::string& name, int input, ops::Pool2dParams p);
  int add_global_avg_pool(const std::string& name, int input);
  int add_dense(const std::string& name, int input, ops::DenseParams p,
                Tensor weight, Tensor bias = {});
  int add_flatten(const std::string& name, int input);
  int add_softmax(const std::string& name, int input);
  int add_upsample2x(const std::string& name, int input);
  int add_multibox_detection(const std::string& name, int cls_prob,
                             int loc_pred, Tensor anchors,
                             ops::MultiboxDetectionParams p);
  /// Fused SSD detection head over multiple scales. `heads` holds
  /// (cls_conv, loc_conv) node pairs: cls shape (B, A*(C), H, W) with C
  /// classes including background, loc shape (B, A*4, H, W). `anchors` is
  /// the concatenation of per-scale priors, one row per anchor, in
  /// scale-major, cell-row-major, anchor-minor order.
  int add_ssd_detection(const std::string& name,
                        const std::vector<std::pair<int, int>>& heads,
                        Tensor anchors, int64_t num_classes_incl_bg,
                        ops::MultiboxDetectionParams p);
  int add_yolo_decode(const std::string& name, int input,
                      ops::YoloDecodeParams p);
  int add_detection_concat(const std::string& name,
                           const std::vector<int>& inputs);
  int add_box_nms(const std::string& name, int input, ops::NmsParams p);
  /// ROIAlign over `rois` (R, 5) rows [batch_idx, x1, y1, x2, y2] applied to
  /// a feature map; output (R, C, pooled_h, pooled_w).
  int add_roi_align(const std::string& name, int features, int rois,
                    ops::RoiAlignParams p);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id);
  const Node& node(int id) const;
  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }

  void set_output(int id) { output_ = id; }
  int output() const { return output_; }

  /// Declared dynamic-shape bounds (default: fully static). Passes that
  /// rebuild the graph must carry the spec across (dce, placement do).
  void set_shape_spec(ShapeSpec spec) { spec_ = spec; }
  const ShapeSpec& shape_spec() const { return spec_; }

  /// Consumers of each node (recomputed on demand).
  std::vector<std::vector<int>> consumers() const;

  /// Per-node reachability from the output. On a compacted graph (after the
  /// dce pass, or any placement rebuild) every entry is true; rewiring
  /// passes may leave unreferenced pass-through nodes, which planners and
  /// executors skip via this mask.
  std::vector<bool> live_mask() const;

  /// All conv nodes in topological order.
  std::vector<int> conv_node_ids() const;

  /// Total conv FLOPs (for reporting).
  int64_t total_conv_flops() const;

  /// Validates structural invariants: node ids match their list positions,
  /// every edge points to an earlier node (topological order), the output id
  /// is in range, and constants carry a bound tensor. Passes are expected to
  /// preserve all of these; PassPipelineOptions::validate_after_each checks
  /// them after every stage.
  void validate() const;

  /// Human-readable table of the (live) nodes: id, op, name, output shape,
  /// placement — the `igc-compile --dump-graph` view.
  std::string summary() const;

 private:
  int push(Node n);
  std::vector<Node> nodes_;
  int output_ = -1;
  ShapeSpec spec_;
};

}  // namespace igc::graph
