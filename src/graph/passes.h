// Graph-level optimization passes (Sec. 3.2.3 "general graph-level
// optimizations" and Sec. 3.1.2 heterogeneous placement).
//
// Each pass rewrites the node list in place and returns the number of
// rewrites it performed. Rewiring passes (fold, fuse, precompute) leave
// bypassed nodes in the list as unreferenced pass-through markers so node
// ids stay stable *within* the pass; the dead-node-elimination pass then
// actually removes them and renumbers the survivors, so downstream stages
// (memory planner, executor, layout tuner, trace spans) see a compact,
// fully-live graph.
//
// These free functions are the raw rewrites; src/graph/pass_manager.h wraps
// them as named `Pass` objects composed into an instrumented `PassPipeline`.
#pragma once

#include <set>

#include "graph/graph.h"

namespace igc::graph {

struct PassStats {
  int folded_scale_shifts = 0;
  int fused_activations = 0;
  /// Nodes replaced by pre-computed constants (constant_precompute).
  int precomputed_constants = 0;
  /// Dead pass-through nodes removed by compaction (dce).
  int removed_dead_nodes = 0;
  /// Device counts over live nodes only.
  int gpu_nodes = 0;
  int cpu_nodes = 0;
  int copies_inserted = 0;
};

/// Folds ScaleShift (inference batch norm) nodes that directly follow a
/// convolution into the convolution's weights and bias ("simplifying
/// inference for batch-norm"). The ScaleShift node becomes a pass-through.
int fold_scale_shift_pass(Graph& g);

/// Fuses Activation nodes into the preceding Conv2d / Add / ScaleShift as an
/// epilogue, removing one elementwise kernel launch per fusion.
int fuse_activation_pass(Graph& g);

/// Constant pre-computing (Sec. 3.2.3): evaluates every node whose inputs
/// are all bound constants at compile time and replaces it with a kConstant
/// node holding the result, so the work never runs at inference time. Walks
/// in topological order, so whole constant subgraphs collapse in one run;
/// the absorbed feeder constants become dead (removed by compaction).
int constant_precompute_pass(Graph& g);

/// Dead-node elimination with graph compaction: removes every node
/// unreachable from the output (the pass-through markers left by rewiring
/// passes) and renumbers the survivors densely, preserving topological
/// order. After this pass every node id is live, so the memory plan assigns
/// a buffer to every slot and the executor never skips a node.
int dead_node_elimination_pass(Graph& g);

/// Heterogeneous placement, exactly as described in Sec. 3.1.2:
/// pass 1 tags every node GPU if its op kind is in the known-performant
/// list (everything except `cpu_ops`), else CPU; pass 2 inserts a
/// device_copy node between any two directly connected nodes with different
/// devices (rebuilding the node list, which also drops any dead nodes).
/// Returns the number of copies inserted.
int placement_pass(Graph& g, const std::set<OpKind>& cpu_ops);

/// Runs the default pipeline (see pass_manager.h: fold, fuse, precompute,
/// dce, place). Vision ops stay on the GPU unless listed in `cpu_ops` (the
/// fallback set).
PassStats optimize(Graph& g, const std::set<OpKind>& cpu_ops = {});

}  // namespace igc::graph
