// Graph-level optimization passes (Sec. 3.2.3 "general graph-level
// optimizations" and Sec. 3.1.2 heterogeneous placement).
//
// Passes rewrite the node list in place. Removed nodes are left in the list
// as pass-through markers (kind preserved, `dead` consumers rewired), so node
// ids stay stable; the executor skips rewired nodes naturally because no one
// references them.
#pragma once

#include <set>

#include "graph/graph.h"

namespace igc::graph {

struct PassStats {
  int folded_scale_shifts = 0;
  int fused_activations = 0;
  int gpu_nodes = 0;
  int cpu_nodes = 0;
  int copies_inserted = 0;
};

/// Folds ScaleShift (inference batch norm) nodes that directly follow a
/// convolution into the convolution's weights and bias ("simplifying
/// inference for batch-norm"). The ScaleShift node becomes a pass-through.
int fold_scale_shift_pass(Graph& g);

/// Fuses Activation nodes into the preceding Conv2d / Add / ScaleShift as an
/// epilogue, removing one elementwise kernel launch per fusion.
int fuse_activation_pass(Graph& g);

/// Heterogeneous placement, exactly as described in Sec. 3.1.2:
/// pass 1 tags every node GPU if its op kind is in the known-performant
/// list (everything except `cpu_ops`), else CPU; pass 2 inserts a
/// device_copy node between any two directly connected nodes with different
/// devices. Returns the number of copies inserted.
int placement_pass(Graph& g, const std::set<OpKind>& cpu_ops);

/// Runs the standard pipeline: fold, fuse, place. Vision ops stay on the GPU
/// unless listed in `cpu_ops` (the fallback set).
PassStats optimize(Graph& g, const std::set<OpKind>& cpu_ops = {});

}  // namespace igc::graph
