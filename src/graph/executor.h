// The heterogeneous graph executor.
//
// Runs an optimized graph against a simulated platform in one of two
// dispatch modes:
//
//   * kSequential — walks nodes in topological order on the calling thread.
//     Simulated latency is the serial sum of every kernel charge (one
//     in-order queue, the paper's baseline executor).
//   * kWavefront  — dispatches every node whose dependencies have resolved
//     onto the scheduler thread pool, so independent branches (Inception
//     limbs, SSD/YOLO heads) and CPU-fallback operators execute concurrently
//     with GPU work on the host. Simulated latency is the critical-path
//     makespan of a deterministic per-lane schedule (GPU queue, companion
//     CPU, copy engine — see sim::LaneSchedule), not the serial sum.
//
// Both modes produce bit-identical outputs: every node draws its synthetic
// data from a private Rng seeded from (input seed, node name), so numerics
// never depend on dispatch order or on which nodes run concurrently.
//
// Intermediate tensors can come from a plan-backed BufferArena (see
// src/tensor/arena.h) sized by plan_memory(): buffers are recycled across
// nodes within a run and, when the caller keeps the arena (CompiledModel
// does), across repeated runs — steady-state serving then performs no
// intermediate heap allocations for node outputs. Under wavefront dispatch,
// anti-dependency edges derived from the plan keep a reused buffer from
// being acquired while a concurrent node still reads its previous contents.
//
// Two execution modes for numerics:
//   * numerics on  — every operator computes its real output (tests,
//     examples, small inputs);
//   * numerics off — compute-heavy tensor ops propagate shapes only while
//     still charging their cost; vision ops always run functionally, on
//     synthetic-but-realistic detection inputs from the workload generator,
//     because their cost depends on the data distribution. This mode makes
//     full-size model benchmarks (SSD at 512x512) cheap on the host.
#pragma once

#include <map>
#include <set>

#include "core/rng.h"
#include "graph/graph.h"
#include "graph/memory_planner.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "sim/device_spec.h"
#include "tensor/arena.h"
#include "tune/tunedb.h"

namespace igc::codegen::jit {
struct DispatchTable;
}

namespace igc::graph {

/// The one categorization rule behind every breakdown: ExecResult's
/// per-category fields, ClockEvent tags, and trace spans all derive from it.
/// A CPU-placed operator (other than the copies around it) is a fallback op
/// (Sec. 3.1.2) whatever its kind.
sim::OpCategory categorize(OpKind kind, Place place);

enum class ExecMode { kSequential, kWavefront };

struct ExecOptions {
  bool compute_numerics = true;
  /// Sec. 3.1 optimizations on vision ops; off = Table 4 "Before".
  bool optimized_vision_ops = true;
  /// Use tuned schedules from `db` for conv2d; off = Table 5 "Before".
  bool use_tuned_configs = true;
  const tune::TuneDb* db = nullptr;
  /// Graph-tuner layout choice per conv node id (block size, 1 = NCHW).
  std::map<int, int> conv_layout_block;

  /// Dispatch mode (see file comment). Outputs are identical either way.
  ExecMode mode = ExecMode::kSequential;
  /// Back node outputs with a plan_memory()-sized buffer arena instead of
  /// fresh heap tensors. When `arena` is null a private arena is built for
  /// the run; pass a persistent arena (plus its plan) to reuse buffers
  /// across runs.
  bool use_arena = false;
  /// Persistent arena and the memory plan it was sized from. Both or
  /// neither (validated at execute() entry); ignored unless use_arena.
  /// Concurrent runs must not share one.
  BufferArena* arena = nullptr;
  const MemoryPlan* plan = nullptr;

  /// Host-JIT dispatch table for this graph (codegen/jit_lower.h). Nodes
  /// present in the table compute their numerics through compiled host
  /// kernels — bit-identical to the reference implementations — writing
  /// straight into their output buffer; absent nodes (and every node when
  /// null) take the reference path. Simulated charges and counters are
  /// unaffected either way.
  const codegen::jit::DispatchTable* jit = nullptr;
  /// Pre-resolved conv schedule per node id (CompiledModel fills this at
  /// compile time). Replaces the per-dispatch tuning-database lookup — and
  /// its workload-key string building — on the serving hot path; nodes
  /// missing from the map fall back to the lookup.
  const std::map<int, tune::ScheduleConfig>* conv_schedules = nullptr;

  /// When set, one TraceSpan per executed node is appended to this recorder
  /// (simulated lane windows, host dispatch times, category, shapes, bytes,
  /// chosen conv schedule). Spans are recorded in the deterministic post-run
  /// merge, so tracing never perturbs outputs or wavefront scheduling. The
  /// recorder must outlive the run; concurrent runs must not share one.
  obs::TraceRecorder* trace = nullptr;
};

struct ExecResult {
  Tensor output;
  /// Simulated end-to-end latency under the chosen dispatch mode: serial
  /// sum for kSequential, per-lane critical path for kWavefront.
  double latency_ms = 0.0;
  /// Serial sum of every node's charge (== kSequential latency).
  double serial_ms = 0.0;
  /// Per-lane critical-path makespan (== kWavefront latency). Also filled
  /// in sequential runs, so one run reports both time models.
  double critical_path_ms = 0.0;
  /// Per-category breakdown of the serial sum, attributed by categorize():
  /// conv / vision / copies / CPU-fallback ops / everything else. The five
  /// fields sum to serial_ms.
  double conv_ms = 0.0;
  double vision_ms = 0.0;
  double copy_ms = 0.0;
  double fallback_ms = 0.0;
  double other_ms = 0.0;
  /// High-water mark of live node-output bytes (arena + heap) during the
  /// run. With an arena this is bounded by MemoryPlan::total_bytes().
  int64_t peak_intermediate_bytes = 0;
  /// Capacity of the arena used (0 when use_arena is off).
  int64_t arena_bytes = 0;
  /// Physical page bytes the arena still held when the run finished (0 when
  /// use_arena is off; 0 for serving contexts that return pages to the shared
  /// pool on release).
  int64_t arena_page_bytes = 0;
  std::vector<sim::ClockEvent> events;
  /// Hardware counters merged over every charge of the run (so counters.ms
  /// equals serial_ms up to summation order).
  sim::KernelCounters counters;
};

/// Executes `g` on `platform`. `input_rng` seeds the synthetic model input
/// (and, in shapes-only mode, the synthetic detection tensors): one value is
/// drawn from it, and every node derives a private Rng from that value and
/// its stable node name.
ExecResult execute(const Graph& g, const sim::Platform& platform,
                   const ExecOptions& opts, Rng& input_rng);

}  // namespace igc::graph
