// The heterogeneous graph executor.
//
// Walks an optimized graph in topological order, runs every node on its
// placed device (the simulated integrated GPU, or the companion CPU for
// fallback ops), charges the simulated clock, and — in numerics mode —
// produces real output tensors validated against reference pipelines.
//
// Two execution modes:
//   * numerics on  — every operator computes its real output (tests,
//     examples, small inputs);
//   * numerics off — compute-heavy tensor ops propagate shapes only while
//     still charging their cost; vision ops always run functionally, on
//     synthetic-but-realistic detection inputs from the workload generator,
//     because their cost depends on the data distribution. This mode makes
//     full-size model benchmarks (SSD at 512x512) cheap on the host.
#pragma once

#include <map>
#include <set>

#include "core/rng.h"
#include "graph/graph.h"
#include "sim/clock.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"

namespace igc::graph {

struct ExecOptions {
  bool compute_numerics = true;
  /// Sec. 3.1 optimizations on vision ops; off = Table 4 "Before".
  bool optimized_vision_ops = true;
  /// Use tuned schedules from `db` for conv2d; off = Table 5 "Before".
  bool use_tuned_configs = true;
  const tune::TuneDb* db = nullptr;
  /// Graph-tuner layout choice per conv node id (block size, 1 = NCHW).
  std::map<int, int> conv_layout_block;
};

struct ExecResult {
  Tensor output;
  double latency_ms = 0.0;
  /// Per-category breakdown (conv / vision / copies / everything else).
  double conv_ms = 0.0;
  double vision_ms = 0.0;
  double copy_ms = 0.0;
  double other_ms = 0.0;
  std::vector<sim::ClockEvent> events;
};

/// Executes `g` on `platform`. `input_rng` seeds the synthetic model input
/// (and, in shapes-only mode, the synthetic detection tensors).
ExecResult execute(const Graph& g, const sim::Platform& platform,
                   const ExecOptions& opts, Rng& input_rng);

}  // namespace igc::graph
