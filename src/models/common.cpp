#include "models/common.h"

#include <cmath>

#include "ops/nn/nn_ops.h"

namespace igc::models {

int conv_bn_act(graph::Graph& g, Rng& rng, const std::string& name, int input,
                int64_t out_channels, int64_t kernel, int64_t stride,
                int64_t pad, int64_t groups, bool relu, bool leaky) {
  const Shape& in_shape = g.node(input).out_shape;
  ops::Conv2dParams p;
  p.batch = in_shape[0];
  p.in_channels = in_shape[1];
  p.in_h = in_shape[2];
  p.in_w = in_shape[3];
  p.out_channels = out_channels;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  const float fan_in =
      static_cast<float>((p.in_channels / groups) * kernel * kernel);
  Tensor w = Tensor::random_normal(
      Shape{out_channels, p.in_channels / groups, kernel, kernel}, rng,
      std::sqrt(2.0f / fan_in));
  const int conv = g.add_conv2d(name, input, p, std::move(w));

  // Inference batch norm as a scale-shift node; the fold pass merges it into
  // the conv.
  Tensor gamma = Tensor::random_uniform(Shape{out_channels}, rng, 0.8f, 1.2f);
  Tensor beta = Tensor::random_normal(Shape{out_channels}, rng, 0.05f);
  Tensor mean = Tensor::random_normal(Shape{out_channels}, rng, 0.05f);
  Tensor var = Tensor::random_uniform(Shape{out_channels}, rng, 0.5f, 1.5f);
  Tensor scale, shift;
  ops::fold_batch_norm(gamma, beta, mean, var, 1e-5f, &scale, &shift);
  const int bn = g.add_scale_shift(name + "_bn", conv, std::move(scale),
                                   std::move(shift));
  if (!relu && !leaky) return bn;
  return g.add_activation(
      name + (leaky ? "_leaky" : "_relu"), bn,
      leaky ? ops::Activation::kLeakyRelu : ops::Activation::kRelu, 0.1f);
}

int conv_bias(graph::Graph& g, Rng& rng, const std::string& name, int input,
              int64_t out_channels, int64_t kernel, int64_t stride,
              int64_t pad) {
  const Shape& in_shape = g.node(input).out_shape;
  ops::Conv2dParams p;
  p.batch = in_shape[0];
  p.in_channels = in_shape[1];
  p.in_h = in_shape[2];
  p.in_w = in_shape[3];
  p.out_channels = out_channels;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  const float fan_in = static_cast<float>(p.in_channels * kernel * kernel);
  Tensor w = Tensor::random_normal(
      Shape{out_channels, p.in_channels, kernel, kernel}, rng,
      std::sqrt(2.0f / fan_in));
  Tensor b = Tensor::random_normal(Shape{out_channels}, rng, 0.01f);
  return g.add_conv2d(name, input, p, std::move(w), std::move(b));
}

}  // namespace igc::models
