// Image-classification models: ResNet-50 v1, MobileNet 1.0, SqueezeNet 1.0.
#include <cmath>

#include "models/common.h"
#include "models/models.h"
#include "ops/nn/nn_ops.h"

namespace igc::models {

/// ResNet v1 bottleneck: 1x1 reduce, 3x3, 1x1 expand (+ projection shortcut
/// when shape changes), ReLU after the residual add.
int resnet_bottleneck(graph::Graph& g, Rng& rng, const std::string& name,
                      int input, int64_t mid_channels, int64_t stride) {
  const int64_t out_channels = mid_channels * 4;
  const bool project =
      g.node(input).out_shape[1] != out_channels || stride != 1;
  int shortcut = input;
  if (project) {
    shortcut = conv_bn_act(g, rng, name + "_proj", input, out_channels, 1,
                           stride, 0, 1, /*relu=*/false);
  }
  int x = conv_bn_act(g, rng, name + "_1x1a", input, mid_channels, 1, 1, 0);
  x = conv_bn_act(g, rng, name + "_3x3", x, mid_channels, 3, stride, 1);
  x = conv_bn_act(g, rng, name + "_1x1b", x, out_channels, 1, 1, 0, 1,
                  /*relu=*/false);
  const int sum = g.add_add(name + "_add", x, shortcut);
  return g.add_activation(name + "_out", sum, ops::Activation::kRelu);
}

namespace {

int classifier_head(graph::Graph& g, Rng& rng, int x, int64_t num_classes) {
  const int gap = g.add_global_avg_pool("gap", x);
  const int flat = g.add_flatten("flatten", gap);
  const Shape& fs = g.node(flat).out_shape;
  ops::DenseParams dp;
  dp.batch = fs[0];
  dp.in_features = fs[1];
  dp.out_features = num_classes;
  Tensor w = Tensor::random_normal(Shape{num_classes, dp.in_features}, rng,
                                   std::sqrt(2.0f / static_cast<float>(dp.in_features)));
  Tensor b = Tensor::random_normal(Shape{num_classes}, rng, 0.01f);
  const int fc = g.add_dense("fc", flat, dp, std::move(w), std::move(b));
  return g.add_softmax("prob", fc);
}

/// Classifiers are fully convolutional up to a global pooling (or GAP-style
/// conv10) head, so one compiled model serves any batch and any square
/// resolution the conv stack can reduce: declare both dims dynamic.
graph::ShapeSpec classification_spec(int64_t batch, int64_t image_size) {
  graph::ShapeSpec spec;
  spec.dynamic_batch = true;
  spec.dynamic_hw = true;
  spec.min_batch = 1;
  spec.max_batch = 8;
  spec.min_hw = 64;
  spec.max_hw = 1024;
  spec.seed_batch = batch;
  spec.seed_hw = image_size;
  return spec;
}

}  // namespace

Model build_resnet50(Rng& rng, int64_t image_size, int64_t batch,
                     int64_t num_classes) {
  Model m;
  m.name = "ResNet50_v1";
  graph::Graph& g = m.graph;
  const int input = g.add_input("data", Shape{batch, 3, image_size, image_size});
  int x = conv_bn_act(g, rng, "conv0", input, 64, 7, 2, 3);
  ops::Pool2dParams mp;
  mp.kind = ops::PoolKind::kMax;
  mp.kernel = 3;
  mp.stride = 2;
  mp.pad = 1;
  x = g.add_pool2d("pool0", x, mp);

  const int64_t stage_mid[4] = {64, 128, 256, 512};
  const int stage_blocks[4] = {3, 4, 6, 3};
  for (int s = 0; s < 4; ++s) {
    for (int b = 0; b < stage_blocks[s]; ++b) {
      const int64_t stride = (b == 0 && s > 0) ? 2 : 1;
      x = resnet_bottleneck(
          g, rng,
          "stage" + std::to_string(s + 1) + "_block" + std::to_string(b + 1),
          x, stage_mid[s], stride);
    }
  }
  const int out = classifier_head(g, rng, x, num_classes);
  g.set_output(out);
  g.validate();
  g.set_shape_spec(classification_spec(batch, image_size));
  return m;
}

Model build_mobilenet(Rng& rng, int64_t image_size, int64_t batch,
                      int64_t num_classes) {
  Model m;
  m.name = "MobileNet1.0";
  graph::Graph& g = m.graph;
  const int input = g.add_input("data", Shape{batch, 3, image_size, image_size});
  int x = conv_bn_act(g, rng, "conv0", input, 32, 3, 2, 1);

  // (out_channels, stride) of the 13 depthwise-separable blocks.
  const std::pair<int64_t, int64_t> blocks[] = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1},  {1024, 2}, {1024, 1}};
  int idx = 0;
  for (const auto& [out_c, stride] : blocks) {
    const std::string name = "dw" + std::to_string(++idx);
    const int64_t in_c = g.node(x).out_shape[1];
    x = conv_bn_act(g, rng, name + "_depthwise", x, in_c, 3, stride, 1,
                    /*groups=*/in_c);
    x = conv_bn_act(g, rng, name + "_pointwise", x, out_c, 1, 1, 0);
  }
  const int out = classifier_head(g, rng, x, num_classes);
  g.set_output(out);
  g.validate();
  g.set_shape_spec(classification_spec(batch, image_size));
  return m;
}

namespace {

int fire_module(graph::Graph& g, Rng& rng, const std::string& name, int input,
                int64_t squeeze, int64_t expand1, int64_t expand3) {
  const int s = conv_bn_act(g, rng, name + "_squeeze1x1", input, squeeze, 1, 1, 0);
  const int e1 = conv_bn_act(g, rng, name + "_expand1x1", s, expand1, 1, 1, 0);
  const int e3 = conv_bn_act(g, rng, name + "_expand3x3", s, expand3, 3, 1, 1);
  return g.add_concat(name + "_concat", {e1, e3});
}

}  // namespace

Model build_squeezenet(Rng& rng, int64_t image_size, int64_t batch,
                       int64_t num_classes) {
  Model m;
  m.name = "SqueezeNet1.0";
  graph::Graph& g = m.graph;
  const int input = g.add_input("data", Shape{batch, 3, image_size, image_size});
  int x = conv_bn_act(g, rng, "conv1", input, 96, 7, 2, 3);
  ops::Pool2dParams mp;
  mp.kind = ops::PoolKind::kMax;
  mp.kernel = 3;
  mp.stride = 2;
  mp.pad = 0;
  x = g.add_pool2d("pool1", x, mp);
  x = fire_module(g, rng, "fire2", x, 16, 64, 64);
  x = fire_module(g, rng, "fire3", x, 16, 64, 64);
  x = fire_module(g, rng, "fire4", x, 32, 128, 128);
  x = g.add_pool2d("pool4", x, mp);
  x = fire_module(g, rng, "fire5", x, 32, 128, 128);
  x = fire_module(g, rng, "fire6", x, 48, 192, 192);
  x = fire_module(g, rng, "fire7", x, 48, 192, 192);
  x = fire_module(g, rng, "fire8", x, 64, 256, 256);
  x = g.add_pool2d("pool8", x, mp);
  x = fire_module(g, rng, "fire9", x, 64, 256, 256);
  // conv10: 1x1 to num_classes, then GAP + softmax.
  x = conv_bn_act(g, rng, "conv10", x, num_classes, 1, 1, 0);
  const int gap = g.add_global_avg_pool("gap", x);
  const int flat = g.add_flatten("flatten", gap);
  const int out = g.add_softmax("prob", flat);
  g.set_output(out);
  g.validate();
  g.set_shape_spec(classification_spec(batch, image_size));
  return m;
}

namespace {

/// The four-branch GoogLeNet module: 1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1,
/// channel-concatenated. All branches fork from one input and meet only at
/// the concat, so they can execute in parallel.
int inception_module(graph::Graph& g, Rng& rng, const std::string& name,
                     int input, int64_t c1, int64_t c3r, int64_t c3,
                     int64_t c5r, int64_t c5, int64_t cp) {
  const int b1 = conv_bn_act(g, rng, name + "_1x1", input, c1, 1, 1, 0);
  int b2 = conv_bn_act(g, rng, name + "_3x3r", input, c3r, 1, 1, 0);
  b2 = conv_bn_act(g, rng, name + "_3x3", b2, c3, 3, 1, 1);
  int b3 = conv_bn_act(g, rng, name + "_5x5r", input, c5r, 1, 1, 0);
  b3 = conv_bn_act(g, rng, name + "_5x5", b3, c5, 5, 1, 2);
  ops::Pool2dParams pp;
  pp.kind = ops::PoolKind::kMax;
  pp.kernel = 3;
  pp.stride = 1;
  pp.pad = 1;
  int b4 = g.add_pool2d(name + "_pool", input, pp);
  b4 = conv_bn_act(g, rng, name + "_pool_proj", b4, cp, 1, 1, 0);
  return g.add_concat(name + "_concat", {b1, b2, b3, b4});
}

}  // namespace

Model build_inception_v1(Rng& rng, int64_t image_size, int64_t batch,
                         int64_t num_classes) {
  Model m;
  m.name = "InceptionV1";
  graph::Graph& g = m.graph;
  const int input = g.add_input("data", Shape{batch, 3, image_size, image_size});
  ops::Pool2dParams mp;
  mp.kind = ops::PoolKind::kMax;
  mp.kernel = 3;
  mp.stride = 2;
  mp.pad = 1;
  int x = conv_bn_act(g, rng, "conv1", input, 64, 7, 2, 3);
  x = g.add_pool2d("pool1", x, mp);
  x = conv_bn_act(g, rng, "conv2_reduce", x, 64, 1, 1, 0);
  x = conv_bn_act(g, rng, "conv2", x, 192, 3, 1, 1);
  x = g.add_pool2d("pool2", x, mp);

  x = inception_module(g, rng, "inc3a", x, 64, 96, 128, 16, 32, 32);
  x = inception_module(g, rng, "inc3b", x, 128, 128, 192, 32, 96, 64);
  x = g.add_pool2d("pool3", x, mp);
  x = inception_module(g, rng, "inc4a", x, 192, 96, 208, 16, 48, 64);
  x = inception_module(g, rng, "inc4b", x, 160, 112, 224, 24, 64, 64);
  x = inception_module(g, rng, "inc4c", x, 128, 128, 256, 24, 64, 64);
  x = inception_module(g, rng, "inc4d", x, 112, 144, 288, 32, 64, 64);
  x = inception_module(g, rng, "inc4e", x, 256, 160, 320, 32, 128, 128);
  x = g.add_pool2d("pool4", x, mp);
  x = inception_module(g, rng, "inc5a", x, 256, 160, 320, 32, 128, 128);
  x = inception_module(g, rng, "inc5b", x, 384, 192, 384, 48, 128, 128);
  const int out = classifier_head(g, rng, x, num_classes);
  g.set_output(out);
  g.validate();
  g.set_shape_spec(classification_spec(batch, image_size));
  return m;
}

}  // namespace igc::models
