// Object-detection models: SSD (MobileNet / ResNet-50 backbones) and YOLOv3.
#include <cmath>

#include "core/error.h"
#include "models/common.h"
#include "models/models.h"
#include "ops/vision/nms.h"

namespace igc::models {
namespace {

/// Detection graphs bake their anchor grids for one input resolution, so
/// only the batch dimension is dynamic (resolving a new resolution would
/// change the anchor count — rejected at bind time with a pointed error).
graph::ShapeSpec detection_spec(int64_t batch, int64_t image_size) {
  graph::ShapeSpec spec;
  spec.dynamic_batch = true;
  spec.min_batch = 1;
  spec.max_batch = 8;
  spec.seed_batch = batch;
  spec.seed_hw = image_size;
  spec.min_hw = image_size;
  spec.max_hw = image_size;
  return spec;
}

// ---- SSD -------------------------------------------------------------------

/// Backbone feature taps for SSD: strides 8, 16, and 32 plus extra stride-2
/// stages — seven scales at 512x512, yielding the classic ~24.5k anchors.
std::vector<int> ssd_features(graph::Graph& g, Rng& rng, SsdBackbone backbone,
                              int input) {
  std::vector<int> taps;
  int x = input;
  if (backbone == SsdBackbone::kMobileNet) {
    x = conv_bn_act(g, rng, "conv0", x, 32, 3, 2, 1);
    const std::pair<int64_t, int64_t> blocks[] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2}, {512, 1},
        {512, 1}, {512, 1}, {512, 1}, {512, 1},  {1024, 2}, {1024, 1}};
    int idx = 0;
    for (const auto& [out_c, stride] : blocks) {
      const std::string name = "dw" + std::to_string(++idx);
      const int64_t in_c = g.node(x).out_shape[1];
      x = conv_bn_act(g, rng, name + "_depthwise", x, in_c, 3, stride, 1, in_c);
      x = conv_bn_act(g, rng, name + "_pointwise", x, out_c, 1, 1, 0);
      if (idx == 5) taps.push_back(x);   // stride 8, 256 channels
      if (idx == 11) taps.push_back(x);  // stride 16, 512 channels
    }
    taps.push_back(x);  // stride 32, 1024 channels
  } else {
    x = conv_bn_act(g, rng, "conv0", x, 64, 7, 2, 3);
    ops::Pool2dParams mp;
    mp.kind = ops::PoolKind::kMax;
    mp.kernel = 3;
    mp.stride = 2;
    mp.pad = 1;
    x = g.add_pool2d("pool0", x, mp);
    const int64_t stage_mid[4] = {64, 128, 256, 512};
    const int stage_blocks[4] = {3, 4, 6, 3};
    for (int s = 0; s < 4; ++s) {
      for (int b = 0; b < stage_blocks[s]; ++b) {
        const int64_t stride = (b == 0 && s > 0) ? 2 : 1;
        x = resnet_bottleneck(g, rng,
                              "stage" + std::to_string(s + 1) + "_block" +
                                  std::to_string(b + 1),
                              x, stage_mid[s], stride);
      }
      if (s == 1) taps.push_back(x);  // stride 8, 512 channels
      if (s == 2) taps.push_back(x);  // stride 16, 1024 channels
    }
    taps.push_back(x);  // stride 32, 2048 channels
  }
  // Extra feature stages: 1x1 reduce + 3x3 stride-2.
  const int64_t extra_channels[4] = {512, 256, 256, 256};
  for (int e = 0; e < 4; ++e) {
    const std::string name = "extra" + std::to_string(e + 1);
    const Shape& s = g.node(x).out_shape;
    if (s[2] < 2 || s[3] < 2) break;  // feature map exhausted
    x = conv_bn_act(g, rng, name + "_1x1", x, extra_channels[e] / 2, 1, 1, 0);
    x = conv_bn_act(g, rng, name + "_3x3", x, extra_channels[e], 3, 2, 1);
    taps.push_back(x);
  }
  return taps;
}

}  // namespace

Model build_ssd(Rng& rng, SsdBackbone backbone, int64_t image_size,
                int64_t batch, int64_t num_classes) {
  Model m;
  m.name = backbone == SsdBackbone::kMobileNet ? "SSD_MobileNet1.0"
                                               : "SSD_ResNet50";
  graph::Graph& g = m.graph;
  const int input = g.add_input("data", Shape{batch, 3, image_size, image_size});
  const std::vector<int> taps = ssd_features(g, rng, backbone, input);
  const size_t num_scales = taps.size();
  IGC_CHECK_GE(num_scales, 3u) << "input too small for the SSD pyramid";

  // Anchor sizes grow linearly from 0.1 to 0.95 over the scales (the SSD
  // convention); middle scales get the extra 3:1 aspect ratios.
  std::vector<std::pair<int, int>> heads;
  std::vector<Tensor> prior_list;
  int64_t total_anchors = 0;
  const int64_t c1 = num_classes + 1;  // + background
  for (size_t i = 0; i < num_scales; ++i) {
    const float s0 = 0.1f + 0.85f * static_cast<float>(i) /
                                static_cast<float>(num_scales - 1);
    const float s1 = 0.1f + 0.85f * static_cast<float>(i + 1) /
                                static_cast<float>(num_scales - 1);
    ops::MultiboxPriorParams pp;
    const Shape& fs = g.node(taps[i]).out_shape;
    pp.feature_h = fs[2];
    pp.feature_w = fs[3];
    pp.sizes = {s0, std::sqrt(s0 * std::min(s1, 1.0f))};
    const bool wide = i >= 1 && i + 2 < num_scales;
    pp.ratios = wide ? std::vector<float>{1.0f, 2.0f, 0.5f, 3.0f, 1.0f / 3.0f}
                     : std::vector<float>{1.0f, 2.0f, 0.5f};
    const int64_t a =
        static_cast<int64_t>(pp.sizes.size() + pp.ratios.size()) - 1;
    Tensor priors = ops::multibox_prior_reference(pp);
    total_anchors += priors.shape()[0];
    prior_list.push_back(std::move(priors));

    const std::string name = "scale" + std::to_string(i);
    const int cls = conv_bias(g, rng, name + "_cls", taps[i], a * c1, 3, 1, 1);
    const int loc = conv_bias(g, rng, name + "_loc", taps[i], a * 4, 3, 1, 1);
    heads.emplace_back(cls, loc);
  }

  // Concatenate the per-scale priors into one (N, 4) tensor.
  Tensor anchors(Shape{total_anchors, 4}, DType::kFloat32);
  int64_t off = 0;
  for (const Tensor& p : prior_list) {
    std::copy(p.data_f32(), p.data_f32() + p.numel(),
              anchors.data_f32() + off);
    off += p.numel();
  }

  ops::MultiboxDetectionParams mp;
  mp.nms.iou_threshold = 0.45f;
  mp.nms.valid_thresh = 0.01f;
  mp.nms.topk = 400;
  const int det = g.add_ssd_detection("ssd_detection", heads,
                                      std::move(anchors), c1, mp);
  g.set_output(det);
  g.validate();
  g.set_shape_spec(detection_spec(batch, image_size));
  return m;
}

// ---- YOLOv3 ----------------------------------------------------------------

namespace {

int darknet_residual(graph::Graph& g, Rng& rng, const std::string& name,
                     int input, int64_t channels) {
  int x = conv_bn_act(g, rng, name + "_1x1", input, channels / 2, 1, 1, 0, 1,
                      false, /*leaky=*/true);
  x = conv_bn_act(g, rng, name + "_3x3", x, channels, 3, 1, 1, 1, false,
                  /*leaky=*/true);
  return g.add_add(name + "_add", x, input);
}

/// The 5-conv detection block; returns (branch_point, head_input).
std::pair<int, int> yolo_block(graph::Graph& g, Rng& rng,
                               const std::string& name, int input,
                               int64_t channels) {
  int x = input;
  for (int i = 0; i < 2; ++i) {
    x = conv_bn_act(g, rng, name + "_a" + std::to_string(i), x, channels, 1, 1,
                    0, 1, false, true);
    x = conv_bn_act(g, rng, name + "_b" + std::to_string(i), x, channels * 2,
                    3, 1, 1, 1, false, true);
  }
  const int branch = conv_bn_act(g, rng, name + "_c", x, channels, 1, 1, 0, 1,
                                 false, true);
  const int head = conv_bn_act(g, rng, name + "_d", branch, channels * 2, 3, 1,
                               1, 1, false, true);
  return {branch, head};
}

}  // namespace

Model build_yolov3(Rng& rng, int64_t image_size, int64_t batch,
                   int64_t num_classes) {
  IGC_CHECK_EQ(image_size % 32, 0) << "YOLOv3 input must be divisible by 32";
  Model m;
  m.name = "Yolov3";
  graph::Graph& g = m.graph;
  const int input = g.add_input("data", Shape{batch, 3, image_size, image_size});

  // Darknet-53.
  int x = conv_bn_act(g, rng, "conv0", input, 32, 3, 1, 1, 1, false, true);
  struct Stage {
    int64_t channels;
    int residuals;
  };
  const Stage stages[] = {{64, 1}, {128, 2}, {256, 8}, {512, 8}, {1024, 4}};
  int tap8 = -1, tap16 = -1;
  int stage_idx = 0;
  for (const Stage& s : stages) {
    ++stage_idx;
    x = conv_bn_act(g, rng, "down" + std::to_string(stage_idx), x, s.channels,
                    3, 2, 1, 1, false, true);
    for (int r = 0; r < s.residuals; ++r) {
      x = darknet_residual(
          g, rng, "res" + std::to_string(stage_idx) + "_" + std::to_string(r),
          x, s.channels);
    }
    if (s.channels == 256) tap8 = x;
    if (s.channels == 512) tap16 = x;
  }

  const int64_t per_anchor = 5 + num_classes;
  const std::vector<std::vector<std::pair<float, float>>> anchor_sets = {
      {{116, 90}, {156, 198}, {373, 326}},  // stride 32
      {{30, 61}, {62, 45}, {59, 119}},      // stride 16
      {{10, 13}, {16, 30}, {33, 23}},       // stride 8
  };

  std::vector<int> decoded;
  // Head 1 (stride 32).
  auto [branch1, head1_in] = yolo_block(g, rng, "head1", x, 512);
  int head1 = conv_bias(g, rng, "head1_out", head1_in, 3 * per_anchor, 1, 1, 0);
  // Head 2 (stride 16): upsample + concat with tap16.
  int up1 = conv_bn_act(g, rng, "up1_1x1", branch1, 256, 1, 1, 0, 1, false, true);
  up1 = g.add_upsample2x("up1", up1);
  int cat1 = g.add_concat("cat1", {up1, tap16});
  auto [branch2, head2_in] = yolo_block(g, rng, "head2", cat1, 256);
  int head2 = conv_bias(g, rng, "head2_out", head2_in, 3 * per_anchor, 1, 1, 0);
  // Head 3 (stride 8): upsample + concat with tap8.
  int up2 = conv_bn_act(g, rng, "up2_1x1", branch2, 128, 1, 1, 0, 1, false, true);
  up2 = g.add_upsample2x("up2", up2);
  int cat2 = g.add_concat("cat2", {up2, tap8});
  auto [branch3, head3_in] = yolo_block(g, rng, "head3", cat2, 128);
  (void)branch3;
  int head3 = conv_bias(g, rng, "head3_out", head3_in, 3 * per_anchor, 1, 1, 0);

  const int head_ids[3] = {head1, head2, head3};
  for (int h = 0; h < 3; ++h) {
    ops::YoloDecodeParams yp;
    yp.num_classes = num_classes;
    yp.anchors = anchor_sets[static_cast<size_t>(h)];
    yp.input_size = image_size;
    yp.conf_thresh = 0.01f;
    decoded.push_back(
        g.add_yolo_decode("decode" + std::to_string(h + 1), head_ids[h], yp));
  }
  const int cat = g.add_detection_concat("detections", decoded);
  ops::NmsParams np;
  np.iou_threshold = 0.45f;
  np.valid_thresh = 0.01f;
  np.topk = 400;
  const int out = g.add_box_nms("nms", cat, np);
  g.set_output(out);
  g.validate();
  g.set_shape_spec(detection_spec(batch, image_size));
  return m;
}

std::vector<Model> build_all(Rng& rng, bool small_detection_inputs) {
  const int64_t ssd_size = small_detection_inputs ? 300 : 512;
  // YOLOv3 uses the standard 416 input (320 on the memory-constrained Mali).
  const int64_t yolo_size = small_detection_inputs ? 320 : 416;
  std::vector<Model> models;
  models.push_back(build_resnet50(rng));
  models.push_back(build_mobilenet(rng));
  models.push_back(build_squeezenet(rng));
  models.push_back(build_ssd(rng, SsdBackbone::kMobileNet, ssd_size));
  models.push_back(build_ssd(rng, SsdBackbone::kResNet50, ssd_size));
  models.push_back(build_yolov3(rng, yolo_size));
  return models;
}

}  // namespace igc::models
