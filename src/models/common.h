// Shared building blocks for the model zoo.
#pragma once

#include <string>

#include "core/rng.h"
#include "graph/graph.h"

namespace igc::models {

/// Conv -> (folded-at-build) batch norm -> activation. Weights are
/// Xavier-ish random; batch-norm statistics are random but well-conditioned.
/// Returns the output node id. `act` < 0 skips the activation.
int conv_bn_act(graph::Graph& g, Rng& rng, const std::string& name, int input,
                int64_t out_channels, int64_t kernel, int64_t stride,
                int64_t pad, int64_t groups = 1, bool relu = true,
                bool leaky = false);

/// Plain conv with bias, no BN/activation (detection heads).
int conv_bias(graph::Graph& g, Rng& rng, const std::string& name, int input,
              int64_t out_channels, int64_t kernel, int64_t stride,
              int64_t pad);

/// ResNet v1 bottleneck (1x1 -> 3x3 -> 1x1 + shortcut), shared between the
/// classifier and the SSD backbone.
int resnet_bottleneck(graph::Graph& g, Rng& rng, const std::string& name,
                      int input, int64_t mid_channels, int64_t stride);

}  // namespace igc::models
