// Semantic segmentation: FCN-8s on a ResNet-50 backbone — the third vision
// task the paper's introduction motivates ("image classification, object
// detection, and segmentation"). Score maps at strides 8/16/32 are fused
// through learned (transposed-conv) upsampling, FCN style.
#include <cmath>

#include "core/error.h"
#include "models/common.h"
#include "models/models.h"
#include "ops/nn/conv2d_transpose.h"

namespace igc::models {
namespace {

/// 1x1 score conv to `classes` channels.
int score_conv(graph::Graph& g, Rng& rng, const std::string& name, int input,
               int64_t classes) {
  return conv_bias(g, rng, name, input, classes, 1, 1, 0);
}

/// Learned 2x (or stride-x) upsampling initialized to bilinear weights.
int upsample_deconv(graph::Graph& g, const std::string& name, int input,
                    int64_t stride) {
  const Shape& s = g.node(input).out_shape;
  ops::Conv2dTransposeParams p;
  p.batch = s[0];
  p.in_channels = s[1];
  p.in_h = s[2];
  p.in_w = s[3];
  p.out_channels = s[1];
  p.kernel = 2 * stride;
  p.stride = stride;
  p.pad = stride / 2;
  Tensor w = ops::bilinear_upsample_weights(s[1], p.kernel);
  return g.add_conv2d_transpose(name, input, p, std::move(w));
}

}  // namespace

Model build_fcn_resnet50(Rng& rng, int64_t image_size, int64_t batch,
                         int64_t num_classes) {
  IGC_CHECK_EQ(image_size % 32, 0) << "FCN-8s wants a stride-32-aligned input";
  Model m;
  m.name = "FCN8s_ResNet50";
  graph::Graph& g = m.graph;
  const int input = g.add_input("data", Shape{batch, 3, image_size, image_size});

  // ResNet-50 backbone with taps at strides 8 / 16 / 32.
  int x = conv_bn_act(g, rng, "conv0", input, 64, 7, 2, 3);
  ops::Pool2dParams mp;
  mp.kind = ops::PoolKind::kMax;
  mp.kernel = 3;
  mp.stride = 2;
  mp.pad = 1;
  x = g.add_pool2d("pool0", x, mp);
  const int64_t stage_mid[4] = {64, 128, 256, 512};
  const int stage_blocks[4] = {3, 4, 6, 3};
  int tap8 = -1, tap16 = -1;
  for (int s = 0; s < 4; ++s) {
    for (int b = 0; b < stage_blocks[s]; ++b) {
      const int64_t stride = (b == 0 && s > 0) ? 2 : 1;
      x = resnet_bottleneck(g, rng,
                            "stage" + std::to_string(s + 1) + "_block" +
                                std::to_string(b + 1),
                            x, stage_mid[s], stride);
    }
    if (s == 1) tap8 = x;
    if (s == 2) tap16 = x;
  }

  // FCN-8s head: score each tap, fuse coarse-to-fine with learned 2x
  // upsampling, then a final 8x to full resolution.
  const int score32 = score_conv(g, rng, "score32", x, num_classes);
  const int up32 = upsample_deconv(g, "up32_to_16", score32, 2);
  const int score16 = score_conv(g, rng, "score16", tap16, num_classes);
  const int fuse16 = g.add_add("fuse16", up32, score16);
  const int up16 = upsample_deconv(g, "up16_to_8", fuse16, 2);
  const int score8 = score_conv(g, rng, "score8", tap8, num_classes);
  const int fuse8 = g.add_add("fuse8", up16, score8);
  const int up8 = upsample_deconv(g, "up8_to_1", fuse8, 8);
  g.set_output(up8);  // per-pixel class logits at input resolution
  g.validate();
  // The skip-fusion adds only align for stride-32 inputs (checked above),
  // so FCN keeps its compile-time resolution and serves dynamic batch only.
  graph::ShapeSpec spec;
  spec.dynamic_batch = true;
  spec.min_batch = 1;
  spec.max_batch = 8;
  spec.seed_batch = batch;
  spec.seed_hw = image_size;
  spec.min_hw = image_size;
  spec.max_hw = image_size;
  g.set_shape_spec(spec);
  return m;
}

}  // namespace igc::models
