// The model zoo (Sec. 4.1): structurally faithful builds of the six
// evaluated GluonCV models with seeded-random weights. Latency does not
// depend on weight values, so synthetic weights preserve every benchmark's
// behaviour while keeping the repository self-contained.
//
//   image classification: ResNet50_v1, MobileNet1.0, SqueezeNet1.0 (224x224)
//   object detection:     SSD_MobileNet1.0, SSD_ResNet50, Yolov3
//                         (512x512; 300x300 on Acer aiSage, Table 2 note)
#pragma once

#include <string>

#include "core/rng.h"
#include "graph/graph.h"

namespace igc::models {

struct Model {
  std::string name;
  graph::Graph graph;
};
// Every builder stamps a graph::ShapeSpec on its graph: classifiers declare
// dynamic batch [1,8] and dynamic square resolution [64,1024] (they are
// fully convolutional up to global pooling); detection and segmentation
// models declare dynamic batch only — their anchor grids / skip alignment
// are baked for the build-time resolution. CompiledModel::run(batch, hw)
// validates requested bindings against this spec.

/// ResNet-50 v1: 7x7 stem, [3,4,6,3] bottleneck stages, GAP, FC-1000.
Model build_resnet50(Rng& rng, int64_t image_size = 224, int64_t batch = 1,
                     int64_t num_classes = 1000);

/// MobileNet 1.0: 3x3 stem + 13 depthwise-separable blocks, GAP, FC-1000.
Model build_mobilenet(Rng& rng, int64_t image_size = 224, int64_t batch = 1,
                      int64_t num_classes = 1000);

/// SqueezeNet 1.0: 7x7 stem + fire modules + conv10 classifier.
Model build_squeezenet(Rng& rng, int64_t image_size = 224, int64_t batch = 1,
                       int64_t num_classes = 1000);

/// Inception v1 (GoogLeNet): stem + nine 4-branch inception modules
/// (3a..5b), GAP, FC-1000. The branchiest classifier here — every module
/// forks four independent limbs — which makes it the reference workload for
/// the wavefront executor's branch-overlap win.
Model build_inception_v1(Rng& rng, int64_t image_size = 224, int64_t batch = 1,
                         int64_t num_classes = 1000);

enum class SsdBackbone { kMobileNet, kResNet50 };

/// SSD with six detection scales over the chosen backbone (VOC: 20 classes).
Model build_ssd(Rng& rng, SsdBackbone backbone, int64_t image_size = 512,
                int64_t batch = 1, int64_t num_classes = 20);

/// YOLOv3 on Darknet-53 with three detection heads (COCO: 80 classes).
Model build_yolov3(Rng& rng, int64_t image_size = 512, int64_t batch = 1,
                   int64_t num_classes = 80);

/// FCN-8s semantic segmentation on a ResNet-50 backbone (the paper's intro
/// names segmentation as a motivating edge task; this exercises transposed
/// convolution and multi-scale fusion). Output: per-pixel class logits.
Model build_fcn_resnet50(Rng& rng, int64_t image_size = 224, int64_t batch = 1,
                         int64_t num_classes = 21);

/// All six evaluation models at the paper's input sizes for a platform
/// (detection shrinks to 300x300 on the Mali device).
std::vector<Model> build_all(Rng& rng, bool small_detection_inputs);

}  // namespace igc::models
